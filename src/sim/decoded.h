/**
 * @file
 * Decoded-µop kernel templates (the measurement hot path's front end).
 *
 * Algorithm 2 runs every benchmark body twice, with n = 10 and n = 110
 * copies; the old harness materialized a fresh ~120-instruction Kernel
 * per run and the simulator re-derived the per-instruction decode
 * (µop list selection, zero-idiom/move-elimination classification,
 * macro-fusion eligibility, serializing attribute, SSE/AVX transition
 * effect) once per unrolled copy. All of those decisions are a pure
 * function of the instruction *instance*, not of its position in the
 * unrolled stream, so a DecodedKernel computes them exactly once per
 * body instruction and the pipeline unrolls *logically*: the virtual
 * instruction stream
 *
 *     prologue · body × reps · epilogue
 *
 * is indexed arithmetically, never materialized.
 *
 * Macro-fusion is the only decision that looks across instruction
 * boundaries. Each pattern entry therefore carries up to two
 * precomputed fused-pair specs: one for its successor within the
 * stream (`fused_next`, e.g. body[i] -> body[i+1], or the last body
 * instruction into the epilogue on the final copy) and one for the
 * copy-wrapping pair (`fused_wrap`, last body instruction -> first
 * body instruction of the next copy). The pipeline picks the variant
 * matching the virtual position, reproducing the materialized
 * kernel's fusion decisions bit for bit.
 *
 * Lifetime: a DecodedKernel borrows the three kernels; they must
 * outlive it. The fused-pair µop specs are owned by the template.
 */

#ifndef UOPS_SIM_DECODED_H
#define UOPS_SIM_DECODED_H

#include <memory>
#include <vector>

#include "isa/kernel.h"
#include "uarch/timing_db.h"
#include "uarch/uarch.h"

namespace uops::sim {

/** Per-instance decode results reused across unrolled copies. */
struct DecodedInstr
{
    const isa::InstrInstance *inst = nullptr;
    const std::vector<uarch::UopSpec> *uops = nullptr;

    bool rename_direct = false; ///< no execution µops (NOP / zero idiom)
    bool try_mov_elim = false;  ///< move-elimination candidate
    bool serializing = false;   ///< drains the pipeline
    bool slow = false;          ///< divider slow-value class

    /** Dependency-breaking idiom: unit whose read is skipped (-1: none). */
    int skip_unit = -1;

    /** Precomputed rename units of an eliminated move's operands. */
    int elim_dst_unit = -1;
    int elim_src_unit = -1;

    /** SSE/AVX transition effect of a non-eliminated instruction. */
    enum class YmmEffect : uint8_t { None, ClearUpper, DirtyUpper };
    YmmEffect ymm_effect = YmmEffect::None;

    /** Fused-pair µop when this instruction macro-fuses with its
     *  successor (nullptr: no fusion). See file comment. */
    const uarch::UopSpec *fused_next = nullptr;
    const uarch::UopSpec *fused_wrap = nullptr;
};

/**
 * A benchmark run template: decoded prologue, body and epilogue, with
 * the body logically repeatable any number of times.
 */
class DecodedKernel
{
  public:
    DecodedKernel(const uarch::TimingDb &timing,
                  const isa::Kernel &prologue, const isa::Kernel &body,
                  const isa::Kernel &epilogue);

    DecodedKernel(const DecodedKernel &) = delete;
    DecodedKernel &operator=(const DecodedKernel &) = delete;

    size_t prologueSize() const { return prologue_size_; }
    size_t bodySize() const { return body_size_; }
    size_t
    epilogueSize() const
    {
        return pattern_.size() - prologue_size_ - body_size_;
    }

    /** Virtual stream length for @p body_reps body copies. */
    size_t
    totalSize(int body_reps) const
    {
        return prologue_size_ + body_size_ * static_cast<size_t>(body_reps) +
               epilogueSize();
    }

    /** One virtual stream position. */
    struct Ref
    {
        const DecodedInstr *instr = nullptr;
        /** True for a body-final instruction followed by another body
         *  copy: fusion must use the wrapping variant. */
        bool wraps = false;
    };

    /** Decode entry at virtual index @p v of a @p body_reps-copy run. */
    Ref at(size_t v, int body_reps) const;

  private:
    DecodedInstr decodeOne(const isa::InstrInstance &inst) const;

    /** Macro-fusion eligibility (moved here from the pipeline; the
     *  decision is static per instance pair). */
    bool canFuse(const isa::InstrInstance &prod,
                 const isa::InstrInstance &branch) const;

    /** Build (and own) the fused-pair spec, nullptr when not fusible. */
    const uarch::UopSpec *fusedSpec(const isa::InstrInstance &prod,
                                    const isa::InstrInstance &branch);

    const uarch::TimingDb &timing_;
    const uarch::UArchInfo &info_;
    std::vector<DecodedInstr> pattern_; ///< prologue · body · epilogue
    std::vector<std::unique_ptr<uarch::UopSpec>> fused_specs_;
    size_t prologue_size_ = 0;
    size_t body_size_ = 0;
};

} // namespace uops::sim

#endif // UOPS_SIM_DECODED_H
