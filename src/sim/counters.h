/**
 * @file
 * Hardware performance counters (Section 3.3).
 *
 * The simulated core exposes the counters the paper's tool relies on:
 * elapsed core clock cycles and the number of µops dispatched to each
 * execution port (UOPS_DISPATCHED.PORT_0..7), plus bookkeeping counts
 * used by tests (issued µops, eliminated µops, retired instructions).
 */

#ifndef UOPS_SIM_COUNTERS_H
#define UOPS_SIM_COUNTERS_H

#include <array>
#include <cstdint>
#include <string>

namespace uops::sim {

/** Maximum number of execution ports on the modeled cores. */
constexpr int kMaxPorts = 8;

/** A snapshot of the core's performance counters. */
struct PerfCounters
{
    int64_t cycles = 0;
    std::array<int64_t, kMaxPorts> port_uops{};
    int64_t uops_issued = 0;
    int64_t uops_eliminated = 0;
    int64_t instrs_retired = 0;

    PerfCounters
    operator-(const PerfCounters &other) const
    {
        PerfCounters d;
        d.cycles = cycles - other.cycles;
        for (int p = 0; p < kMaxPorts; ++p)
            d.port_uops[p] = port_uops[p] - other.port_uops[p];
        d.uops_issued = uops_issued - other.uops_issued;
        d.uops_eliminated = uops_eliminated - other.uops_eliminated;
        d.instrs_retired = instrs_retired - other.instrs_retired;
        return d;
    }

    int64_t
    totalPortUops() const
    {
        int64_t total = 0;
        for (int p = 0; p < kMaxPorts; ++p)
            total += port_uops[p];
        return total;
    }

    std::string
    toString() const
    {
        std::string out = "cycles=" + std::to_string(cycles) + " ports=[";
        for (int p = 0; p < kMaxPorts; ++p) {
            if (p)
                out += ",";
            out += std::to_string(port_uops[p]);
        }
        out += "]";
        return out;
    }
};

} // namespace uops::sim

#endif // UOPS_SIM_COUNTERS_H
