/**
 * @file
 * Thread-safe, sharded memoization of harness measurements.
 *
 * The characterization algorithms are massively redundant at the
 * kernel level: blocking-set discovery measures every candidate in
 * isolation, Algorithm 1 re-measures the pure blocking kernels for
 * every variant, and the latency/throughput analyzers rebuild
 * byte-identical chains across variants sharing an operand shape.
 * Since a Measurement is a pure function of (kernel bytes, harness
 * options) on a given timing database, those repeats can be served
 * from a memo-cache instead of the simulator.
 *
 * Keys are canonical kernel fingerprints: an exact byte serialization
 * of every instruction instance (variant id, divider value class,
 * operand bindings) prefixed with the harness options. The full key
 * is stored, so lookups are exact — a hash collision can never
 * silently return a wrong Measurement, which would break the
 * determinism contract (cache-hit results must be bit-identical to
 * cache-miss results).
 *
 * The table is sharded by key hash; each shard has its own mutex, so
 * the batch engine can share one cache per microarchitecture across
 * all worker threads with negligible contention (simulator runs are
 * milliseconds; the critical section is a map probe).
 *
 * A cache must only be shared between harnesses with the same timing
 * database and options; the batch engine keeps one per uarch.
 */

#ifndef UOPS_SIM_MEASUREMENT_CACHE_H
#define UOPS_SIM_MEASUREMENT_CACHE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/kernel.h"
#include "sim/harness.h"

namespace uops::sim {

class MeasurementCache
{
  public:
    explicit MeasurementCache(size_t num_shards = 16);

    /** Canonical, exact fingerprint of (body, options). */
    static std::string fingerprint(const isa::Kernel &body,
                                   const HarnessOptions &options);

    /** Cached measurement for @p key, if present. */
    std::optional<Measurement> lookup(const std::string &key) const;

    /** Memoize @p m under @p key (first writer wins). */
    void insert(const std::string &key, const Measurement &m);

    size_t numShards() const { return shards_.size(); }
    size_t size() const;
    uint64_t hits() const { return hits_.load(); }
    uint64_t misses() const { return misses_.load(); }

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        std::unordered_map<std::string, Measurement> map;
    };

    Shard &shardFor(const std::string &key) const;

    std::vector<std::unique_ptr<Shard>> shards_;
    mutable std::atomic<uint64_t> hits_{0};
    mutable std::atomic<uint64_t> misses_{0};
};

} // namespace uops::sim

#endif // UOPS_SIM_MEASUREMENT_CACHE_H
