/**
 * @file
 * Tests for the IACA clone: version/uarch support matrix, the named
 * defect registry (Section 7.2 case studies), and loop analysis
 * behaviour (ignored flag and memory dependencies).
 */

#include <gtest/gtest.h>

#include "iaca/iaca.h"
#include "test_util.h"

namespace uops::test {
namespace {

using iaca::IacaAnalyzer;
using iaca::Version;
using uarch::UArch;

TEST(IacaVersions, SupportMatrixMatchesTable1)
{
    using V = Version;
    EXPECT_EQ(iaca::versionsFor(UArch::Nehalem),
              (std::vector<V>{V::V21, V::V22}));
    EXPECT_EQ(iaca::versionsFor(UArch::Westmere),
              (std::vector<V>{V::V21, V::V22}));
    EXPECT_EQ(iaca::versionsFor(UArch::SandyBridge),
              (std::vector<V>{V::V21, V::V22, V::V23}));
    EXPECT_EQ(iaca::versionsFor(UArch::Haswell),
              (std::vector<V>{V::V21, V::V22, V::V23, V::V30}));
    EXPECT_EQ(iaca::versionsFor(UArch::Broadwell),
              (std::vector<V>{V::V22, V::V23, V::V30}));
    EXPECT_EQ(iaca::versionsFor(UArch::Skylake),
              (std::vector<V>{V::V23, V::V30}));
    // "There is currently no support for Kaby Lake and Coffee Lake."
    EXPECT_TRUE(iaca::versionsFor(UArch::KabyLake).empty());
    EXPECT_TRUE(iaca::versionsFor(UArch::CoffeeLake).empty());
    EXPECT_EQ(iaca::versionName(V::V21), "2.1");
    EXPECT_EQ(iaca::versionName(V::V30), "3.0");
}

TEST(IacaBugs, ImulMemNehalemMissesLoadUop)
{
    IacaAnalyzer an(defaultDb(), UArch::Nehalem, Version::V21);
    auto m = an.model(*defaultDb().byName("IMUL_R64_M64"));
    // Ground truth has a load µop on p2; IACA "forgets" it.
    const auto &truth = timingDb(UArch::Nehalem)
                            .timing(*defaultDb().byName("IMUL_R64_M64"));
    EXPECT_EQ(m.total_uops, truth.numUops() - 1);
    for (const auto &[mask, count] : m.usage.entries)
        EXPECT_NE(mask, uarch::portMask({2}));
}

TEST(IacaBugs, TestMemNehalemHasSpuriousStoreUops)
{
    IacaAnalyzer an(defaultDb(), UArch::Nehalem, Version::V21);
    auto m = an.model(*defaultDb().byName("TEST_M64_R64"));
    const auto &truth = timingDb(UArch::Nehalem)
                            .timing(*defaultDb().byName("TEST_M64_R64"));
    EXPECT_EQ(m.total_uops, truth.numUops() + 2);
    bool has_std = false;
    for (const auto &[mask, count] : m.usage.entries)
        if (mask == uarch::portMask({4}))
            has_std = true;
    EXPECT_TRUE(has_std);
}

TEST(IacaBugs, BswapR32SkylakeReportedAsTwoUops)
{
    IacaAnalyzer an(defaultDb(), UArch::Skylake, Version::V30);
    auto m32 = an.model(*defaultDb().byName("BSWAP_R32"));
    auto m64 = an.model(*defaultDb().byName("BSWAP_R64"));
    EXPECT_EQ(m32.total_uops, 2); // hardware: 1
    EXPECT_EQ(m64.total_uops, 2);
}

TEST(IacaBugs, VhaddpdSkylakeSumMismatch)
{
    IacaAnalyzer an(defaultDb(), UArch::Skylake, Version::V30);
    auto m = an.model(*defaultDb().byName("VHADDPD_X_X_X"));
    EXPECT_EQ(m.total_uops, 3);
    // The per-port view shows only one µop: the sums disagree.
    int port_sum = 0;
    for (const auto &[mask, count] : m.usage.entries)
        port_sum += count;
    EXPECT_EQ(port_sum, 1);
}

TEST(IacaBugs, VminpsVersionDifference)
{
    // "2.3": ports 0,1,5; "3.0" (and hardware): ports 0,1.
    IacaAnalyzer v23(defaultDb(), UArch::Skylake, Version::V23);
    IacaAnalyzer v30(defaultDb(), UArch::Skylake, Version::V30);
    const auto *vminps = defaultDb().byName("VMINPS_X_X_X");
    auto m23 = v23.model(*vminps);
    auto m30 = v30.model(*vminps);
    EXPECT_EQ(m23.usage.toString(), "1*p015");
    EXPECT_EQ(m30.usage.toString(), "1*p01");
}

TEST(IacaBugs, SahfHaswellVersionDifference)
{
    // Hardware and "2.1": p06; "2.2"+ adds ports 1 and 5.
    IacaAnalyzer v21(defaultDb(), UArch::Haswell, Version::V21);
    IacaAnalyzer v22(defaultDb(), UArch::Haswell, Version::V22);
    const auto *sahf = defaultDb().byName("SAHF_R8Hi");
    EXPECT_EQ(v21.model(*sahf).usage.toString(), "1*p06");
    EXPECT_EQ(v22.model(*sahf).usage.toString(), "1*p0156");
}

TEST(IacaBugs, LatencyOnlyInV21)
{
    IacaAnalyzer v21(defaultDb(), UArch::SandyBridge, Version::V21);
    IacaAnalyzer v22(defaultDb(), UArch::SandyBridge, Version::V22);
    const auto *add = defaultDb().byName("ADD_R64_R64");
    EXPECT_TRUE(v21.model(*add).latency.has_value());
    EXPECT_FALSE(v22.model(*add).latency.has_value());
}

TEST(IacaBugs, AesdecLatencySandyBridge)
{
    // IACA 2.1 reports 7 for AESDEC (hardware: 8 for the state pair)
    // and 13 for the memory variant (7 + load latency).
    IacaAnalyzer v21(defaultDb(), UArch::SandyBridge, Version::V21);
    auto reg = v21.model(*defaultDb().byName("AESDEC_X_X"));
    ASSERT_TRUE(reg.latency.has_value());
    EXPECT_EQ(*reg.latency, 7);
    auto mem = v21.model(*defaultDb().byName("AESDEC_X_M128"));
    ASSERT_TRUE(mem.latency.has_value());
    EXPECT_EQ(*mem.latency, 13);
}

TEST(IacaLoop, CmcThroughputIgnoresFlagsInV30)
{
    // Section 7.2: "the CMC instruction is reported to have a
    // throughput of 0.25 cycles by IACA [3.0]... on the actual
    // hardware we measured 1 cycle."
    auto kernel = asm_("CMC");
    IacaAnalyzer v30(defaultDb(), UArch::Haswell, Version::V30);
    auto r30 = v30.analyzeLoop(kernel);
    EXPECT_NEAR(r30.block_throughput, 0.25, 0.01);
    IacaAnalyzer v23(defaultDb(), UArch::Haswell, Version::V23);
    auto r23 = v23.analyzeLoop(kernel);
    EXPECT_NEAR(r23.block_throughput, 1.0, 0.01);
}

TEST(IacaLoop, MemoryDependenciesIgnored)
{
    // "the sequence mov [RAX], RBX; mov RBX, [RAX] is reported to
    // have a throughput of 1 cycle" — on hardware it is a ~5-6 cycle
    // store-forwarding round trip.
    auto kernel = asm_("MOV [RAX], RBX\nMOV RBX, [RAX]");
    IacaAnalyzer v30(defaultDb(), UArch::Skylake, Version::V30);
    auto r = v30.analyzeLoop(kernel);
    EXPECT_LE(r.block_throughput, 1.01);

    auto hw = measure(UArch::Skylake, "MOV [RAX], RBX\nMOV RBX, [RAX]");
    EXPECT_GT(hw.cycles, 4.0);
}

TEST(IacaLoop, RegisterDependenciesRespected)
{
    // A plain ADD chain is reported at 1 cycle by all versions.
    auto kernel = asm_("ADD RAX, RBX");
    IacaAnalyzer v30(defaultDb(), UArch::Skylake, Version::V30);
    EXPECT_NEAR(v30.analyzeLoop(kernel).block_throughput, 1.0, 0.01);
}

TEST(IacaLoop, PortPressureDistributed)
{
    auto kernel = asm_("PSHUFD XMM1, XMM2, 0\nADD RAX, RBX");
    IacaAnalyzer v30(defaultDb(), UArch::Skylake, Version::V30);
    auto r = v30.analyzeLoop(kernel);
    // The background perturbation may add a phantom µop to one of the
    // two variants; the structure still holds.
    EXPECT_GE(r.total_uops, 2);
    EXPECT_LE(r.total_uops, 3);
    EXPECT_GT(r.port_pressure[5], 0.9); // shuffle pinned to p5
}

TEST(IacaPerturbation, DeterministicAcrossRuns)
{
    IacaAnalyzer a(defaultDb(), UArch::Skylake, Version::V30);
    IacaAnalyzer b(defaultDb(), UArch::Skylake, Version::V30);
    for (const auto *v : defaultDb().all()) {
        if (!uarchInfo(UArch::Skylake).supports(*v))
            continue;
        auto ma = a.model(*v);
        auto mb = b.model(*v);
        EXPECT_EQ(ma.total_uops, mb.total_uops) << v->name();
        EXPECT_TRUE(ma.usage == mb.usage) << v->name();
    }
}

TEST(IacaPerturbation, DisagreementRateInBand)
{
    // The background perturbation must put the per-uarch µop-count
    // disagreement roughly in Table 1's 7-9% band.
    IacaAnalyzer an(defaultDb(), UArch::Skylake, Version::V30);
    const auto &tdb = timingDb(UArch::Skylake);
    int total = 0, differ = 0;
    for (const auto *v : defaultDb().all()) {
        if (!uarchInfo(UArch::Skylake).supports(*v))
            continue;
        if (v->attrs().has_rep_prefix || v->attrs().has_lock_prefix)
            continue;
        ++total;
        if (an.model(*v).total_uops != tdb.timing(*v).numUops())
            ++differ;
    }
    double rate = 100.0 * differ / total;
    EXPECT_GT(rate, 3.0);
    EXPECT_LT(rate, 15.0);
}

} // namespace
} // namespace uops::test
