/**
 * @file
 * Integration tests: the end-to-end characterization driver, the
 * machine-readable results output (Section 6.4), and the
 * hardware-vs-IACA comparison metrics (Table 1).
 */

#include <gtest/gtest.h>

#include "core/characterize.h"
#include "test_util.h"

namespace uops::test {
namespace {

using core::Characterizer;
using core::CharacterizationSet;
using uarch::UArch;

/** Characterize a fixed, paper-relevant subset of variants. */
const CharacterizationSet &
subsetRun(UArch arch)
{
    static std::map<UArch, std::unique_ptr<CharacterizationSet>> cache;
    auto it = cache.find(arch);
    if (it == cache.end()) {
        Characterizer::Options opts;
        static const std::set<std::string> names = {
            "ADD_R64_R64",   "ADD_R64_M64",   "ADD_M64_R64",
            "ADC_R64_R64",   "SHLD_R64_R64_I8", "AESDEC_X_X",
            "MOVQ2DQ_X_MM",  "MOVDQ2Q_MM_X",  "PSHUFD_X_X_I8",
            "PBLENDVB_X_X_Xi", "MOV_M64_R64",  "MOV_R64_M64",
            "DIVPS_X_X",     "CMC",           "IMUL_R64_R64",
            "XOR_R64_R64",   "PCMPGTD_X_X",   "BSWAP_R32",
            "BSWAP_R64",     "MUL_R64i_R64i_R64",
        };
        opts.filter = [&](const isa::InstrVariant &v) {
            return names.count(v.name()) > 0;
        };
        auto set = std::make_unique<CharacterizationSet>(
            Characterizer(defaultDb(), arch, opts).run());
        it = cache.emplace(arch, std::move(set)).first;
    }
    return *it->second;
}

TEST(Characterizer, MeasurabilityFilter)
{
    Characterizer ch(defaultDb(), UArch::Skylake);
    EXPECT_TRUE(ch.isMeasurable(*defaultDb().byName("ADD_R64_R64")));
    EXPECT_TRUE(ch.isMeasurable(*defaultDb().byName("LOCKADD_M64_R64")));
    EXPECT_FALSE(ch.isMeasurable(
        *defaultDb().byName("CPUID_R32i_R32i_R32i_R32i")));
    EXPECT_FALSE(ch.isMeasurable(*defaultDb().byName("LFENCE")));
    EXPECT_FALSE(ch.isMeasurable(*defaultDb().byName("JMP_R64")));
    EXPECT_FALSE(ch.isMeasurable(*defaultDb().byName("PAUSE")));
    // AVX variants are not measurable on Nehalem (unsupported).
    Characterizer nhm(defaultDb(), UArch::Nehalem);
    EXPECT_FALSE(nhm.isMeasurable(*defaultDb().byName("VADDPS_Y_Y_Y")));
}

TEST(Characterizer, SubsetResultsConsistent)
{
    const auto &set = subsetRun(UArch::Skylake);
    EXPECT_EQ(set.instrs.size(), 20u);
    for (const auto &c : set.instrs) {
        // Port usage total matches the isolation µop count.
        EXPECT_NEAR(c.ports.usage.totalUops(),
                    c.ports.isolation.total_uops, 0.2)
            << c.variant->name();
        // Throughput is positive and no better than the LP bound.
        EXPECT_GT(c.throughput.best().toDouble(), 0.0) << c.variant->name();
        if (c.tp_ports) {
            EXPECT_GE(c.throughput.best().toDouble(),
                      c.tp_ports->toDouble() - 0.10)
                << c.variant->name();
        }
    }
}

TEST(Characterizer, MeasuredEqualsGroundTruthPortUsage)
{
    // The inferred port usage must equal the ground-truth tables for
    // the whole subset — on every generation.
    for (UArch arch : {UArch::Nehalem, UArch::Haswell, UArch::Skylake}) {
        const auto &set = subsetRun(arch);
        const auto &tdb = timingDb(arch);
        for (const auto &c : set.instrs) {
            if (!uarchInfo(arch).supports(*c.variant))
                continue;
            auto truth =
                uarch::PortUsage::ofTiming(tdb.timing(*c.variant).uops);
            EXPECT_TRUE(c.ports.usage == truth)
                << uarch::uarchShortName(arch) << " "
                << c.variant->name() << ": inferred "
                << c.ports.usage.toString() << " vs truth "
                << truth.toString();
        }
    }
}

TEST(Characterizer, LatencyPairsMatchGroundTruth)
{
    const auto &set = subsetRun(UArch::Skylake);
    const auto &tdb = timingDb(UArch::Skylake);
    for (const auto &c : set.instrs) {
        const auto &truth = tdb.timing(*c.variant);
        for (const auto &pair : c.latency.pairs) {
            if (pair.upper_bound || c.variant->attrs().uses_divider)
                continue;
            auto expected = uarch::trueLatency(truth.uops, pair.src_op,
                                               pair.dst_op);
            if (!expected)
                continue;
            // Chains through a different domain may add the bypass
            // delay; accept [true, true+1].
            EXPECT_GE(pair.cycles.toDouble(), *expected - 0.1)
                << c.variant->name() << " " << pair.toString(*c.variant);
            EXPECT_LE(pair.cycles.toDouble(), *expected + 1.1)
                << c.variant->name() << " " << pair.toString(*c.variant);
        }
    }
}

TEST(ResultsXml, StructureAndRoundParse)
{
    const auto &set = subsetRun(UArch::Skylake);
    auto xml = core::exportResultsXml(set);
    EXPECT_EQ(xml->name(), "uopsInfo");
    EXPECT_EQ(xml->getAttr("architecture"), "SKL");
    EXPECT_EQ(xml->getAttr("processor"), "Core i7-6500U");
    auto instrs = xml->childrenNamed("instruction");
    EXPECT_EQ(instrs.size(), set.instrs.size());

    // Re-parse the emitted text (it must be valid XML) and check a
    // specific case study entry.
    auto parsed = parseXml(xml->toString());
    const XmlNode *aes = nullptr;
    for (const auto *i : parsed->childrenNamed("instruction"))
        if (i->getAttr("name") == "AESDEC_X_X")
            aes = i;
    ASSERT_NE(aes, nullptr);
    EXPECT_EQ(aes->firstChild("ports")->getAttr("usage"), "1*p0");
    ASSERT_FALSE(aes->childrenNamed("latency").empty());
}

TEST(IacaComparisonMetrics, SubsetAgreementBehaviour)
{
    const auto &set = subsetRun(UArch::Skylake);
    auto cmp = core::compareWithIaca(defaultDb(), set);
    EXPECT_EQ(cmp.variants_compared,
              static_cast<int>(set.instrs.size()));
    // BSWAP_R32 and VHADDPD-style defects force some disagreement;
    // most variants agree.
    EXPECT_GT(cmp.uopsAgreement(), 60.0);
    EXPECT_LT(cmp.uopsAgreement(), 100.0);
}

TEST(IacaComparisonMetrics, NoIacaForKabyAndCoffeeLake)
{
    const auto &set = subsetRun(UArch::KabyLake);
    auto cmp = core::compareWithIaca(defaultDb(), set);
    EXPECT_EQ(cmp.variants_compared, 0);
}

TEST(Characterizer, ZeroIdiomDetectedViaSameRegChain)
{
    // XOR R,R: the same-register microbenchmark shows the broken
    // dependency (cycles ~0.25, pure throughput) while the distinct
    // register chain is 1 cycle.
    const auto &set = subsetRun(UArch::Skylake);
    const auto *c = set.find("XOR_R64_R64");
    ASSERT_NE(c, nullptr);
    ASSERT_TRUE(c->latency.same_reg_cycles.has_value());
    EXPECT_LT(c->latency.same_reg_cycles->toDouble(), 0.5);
    const auto *self = c->latency.pair(0, 0);
    ASSERT_NE(self, nullptr);
    EXPECT_NEAR(self->cycles.toDouble(), 1.0, 0.1);
}

TEST(Characterizer, PcmpgtDepBreakingDiscovered)
{
    // Section 7.3.6: (V)PCMPGT breaks the dependency with identical
    // registers even though it is not in the manual's list.
    const auto &set = subsetRun(UArch::Skylake);
    const auto *c = set.find("PCMPGTD_X_X");
    ASSERT_NE(c, nullptr);
    ASSERT_TRUE(c->latency.same_reg_cycles.has_value());
    EXPECT_LT(c->latency.same_reg_cycles->toDouble(), 0.6);
    // Unlike a zero idiom it still uses an execution port.
    EXPECT_EQ(c->ports.usage.totalUops(), 1);
}

} // namespace
} // namespace uops::test
