/**
 * @file
 * Torture tests for the epoll reactor transport (src/server/reactor)
 * and the precomputed response-blob fast path (src/server/blob_store):
 * byte-identity against the legacy thread-per-connection transport,
 * golden-render checks for blob bodies, ETag/If-None-Match
 * revalidation across hot swaps, pipelining order with interleaved
 * fast-path and pool-dispatched requests, slow-loris shedding,
 * /reload under concurrent socket load, graceful drain under load,
 * and transport-level refusals.
 */

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/batch.h"
#include "db/catalog.h"
#include "server/blob_store.h"
#include "server/http_server.h"
#include "server/json.h"
#include "test_util.h"

namespace uops::test {
namespace {

using server::HttpRequest;
using server::HttpResponse;

/** Small two-uarch slice: enough shape for /instr fragments (two
 *  records per name) without a long characterization sweep. */
std::shared_ptr<const db::DatabaseCatalog>
sliceCatalog()
{
    static const auto catalog = [] {
        core::BatchOptions options;
        options.num_threads = 2;
        options.characterizer.filter =
            [](const isa::InstrVariant &v) {
                return v.mnemonic() == "ADD" || v.mnemonic() == "IMUL";
            };
        return db::runCatalogSweep(
            defaultDb(),
            {uarch::UArch::Nehalem, uarch::UArch::Skylake}, options,
            nullptr);
    }();
    return catalog;
}

/** A generation with observably different content (and ETag). */
std::shared_ptr<const db::DatabaseCatalog>
altCatalog()
{
    static const auto catalog = [] {
        core::BatchOptions options;
        options.num_threads = 2;
        options.characterizer.filter =
            [](const isa::InstrVariant &v) {
                return v.mnemonic() == "XOR";
            };
        return db::runCatalogSweep(defaultDb(),
                                   {uarch::UArch::Skylake}, options,
                                   nullptr);
    }();
    return catalog;
}

std::unique_ptr<server::QueryService>
makeService()
{
    return std::make_unique<server::QueryService>(sliceCatalog(),
                                                  defaultDb());
}

int
connectTo(uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

void
sendRaw(int fd, const std::string &bytes)
{
    size_t sent = 0;
    while (sent < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + sent,
                           bytes.size() - sent, 0);
        if (n <= 0)
            break;
        sent += static_cast<size_t>(n);
    }
}

/** One Content-Length-framed response off the socket (304s carry no
 *  Content-Length and no body, so the head alone completes them). */
std::string
readOneResponse(int fd, std::string &carry)
{
    std::string response = std::move(carry);
    carry.clear();
    char chunk[4096];
    size_t head_end;
    while (true) {
        size_t pos = response.find("\r\n\r\n");
        if (pos != std::string::npos) {
            head_end = pos + 4;
            break;
        }
        ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0)
            return response;
        response.append(chunk, static_cast<size_t>(n));
    }
    size_t body_bytes = 0;
    size_t cl = response.find("Content-Length: ");
    if (cl != std::string::npos && cl < head_end)
        body_bytes = static_cast<size_t>(
            std::strtoul(response.c_str() + cl + 16, nullptr, 10));
    while (response.size() < head_end + body_bytes) {
        ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0)
            break;
        response.append(chunk, static_cast<size_t>(n));
    }
    carry = response.substr(
        std::min(response.size(), head_end + body_bytes));
    response.resize(std::min(response.size(), head_end + body_bytes));
    return response;
}

/** GET over a fresh connection, Connection: close, EOF framing.
 *  Extra headers go in verbatim ("Name: value\r\n" each). */
std::string
httpGet(uint16_t port, const std::string &target,
        const std::string &extra_headers = "")
{
    int fd = connectTo(port);
    if (fd < 0)
        return "";
    sendRaw(fd, "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n" +
                    extra_headers + "Connection: close\r\n\r\n");
    std::string response;
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0)
        response.append(chunk, static_cast<size_t>(n));
    ::close(fd);
    return response;
}

/** Strip the per-request headers (X-Request-Id, X-Cache) so two wire
 *  responses can be compared for transport identity. */
std::string
canonical(const std::string &wire)
{
    std::string out;
    size_t at = 0;
    while (at < wire.size()) {
        size_t eol = wire.find("\r\n", at);
        if (eol == std::string::npos) {
            out.append(wire, at, std::string::npos);
            break;
        }
        std::string_view line(wire.data() + at, eol - at);
        if (line.rfind("X-Request-Id:", 0) != 0 &&
            line.rfind("X-Cache:", 0) != 0)
            out.append(wire, at, eol + 2 - at);
        if (line.empty()) {
            // Header terminator: the body is opaque payload.
            out.append(wire, eol + 2, std::string::npos);
            break;
        }
        at = eol + 2;
    }
    return out;
}

// ---------------------------------------------------------------------
// Blob store: golden renders and identity with the service handlers.
// ---------------------------------------------------------------------

TEST(BlobStore, InstrBodiesMatchDirectJsonRender)
{
    auto blobs = server::BlobStore::build(*sliceCatalog());

    // Pick any record; the blob body for its name must equal a direct
    // JsonWriter render over the catalog's records in shard order
    // (uarch-ascending, the order the service always renders in).
    db::Query query;
    query.mnemonic = "ADD";
    query.arch = uarch::UArch::Skylake;
    query.limit = 1;
    auto picked = sliceCatalog()->search(query);
    ASSERT_EQ(picked.size(), 1u);
    const std::string name(picked[0].name());

    server::JsonWriter expected;
    expected.raw("{\"name\":\"" + server::jsonEscape(name) +
                 "\",\"results\":[");
    bool first = true;
    for (const db::ShardEntry &shard : sliceCatalog()->shards()) {
        for (uint32_t row : shard.db->findByName(name)) {
            if (!first)
                expected.raw(",");
            first = false;
            server::writeRecordJson(expected, shard.db->record(row));
        }
    }
    expected.raw("]}");

    auto body = blobs->instrBody(name);
    ASSERT_NE(body, nullptr);
    EXPECT_EQ(*body, std::move(expected).str());

    // Single-uarch variant: the fragment slice reassembles to the
    // same bytes a request-time render of just that arch produces.
    auto one_arch = blobs->instrBody(name, uarch::UArch::Skylake);
    ASSERT_NE(one_arch, nullptr);
    EXPECT_NE(one_arch->find("\"uarch\":\"SKL\""), std::string::npos);
    EXPECT_EQ(one_arch->find("\"uarch\":\"NHM\""), std::string::npos);
    EXPECT_EQ(one_arch->rfind("{\"name\":\"" + name + "\"", 0), 0u);

    // Unknown names have no blob.
    EXPECT_EQ(blobs->instrBody("NO_SUCH_VARIANT"), nullptr);
    EXPECT_FALSE(blobs->hasInstr("NO_SUCH_VARIANT"));
}

TEST(BlobStore, UArchsBodyMatchesRendererAndEtagTracksContent)
{
    auto blobs = server::BlobStore::build(*sliceCatalog());
    EXPECT_EQ(*blobs->uarchsBody(),
              server::renderUArchsBody(*sliceCatalog()));

    // The ETag is a pure content hash: identical content hashes to
    // the same tag, different content to a different one.
    auto again = server::BlobStore::build(*sliceCatalog());
    EXPECT_EQ(blobs->etag(), again->etag());
    auto other = server::BlobStore::build(*altCatalog());
    EXPECT_NE(blobs->etag(), other->etag());

    auto stats = blobs->stats();
    EXPECT_GT(stats.names, 0u);
    EXPECT_GT(stats.records, stats.names - 1);  // >= 1 per name
    EXPECT_GT(stats.bytes, 0u);
}

// ---------------------------------------------------------------------
// Transport identity: the reactor and the legacy threaded transport
// must put byte-identical responses on the wire (modulo per-request
// correlation headers).
// ---------------------------------------------------------------------

TEST(ReactorConformance, WireIdenticalToLegacyTransport)
{
    auto reactor_service = makeService();
    auto legacy_service = makeService();
    server::HttpServer::Options reactor_options;  // default transport
    server::HttpServer reactor_http(*reactor_service,
                                    reactor_options);
    server::HttpServer::Options legacy_options;
    legacy_options.reactor = false;
    server::HttpServer legacy_http(*legacy_service, legacy_options);
    reactor_http.start();
    legacy_http.start();

    db::Query query;
    query.mnemonic = "ADD";
    query.arch = uarch::UArch::Skylake;
    query.limit = 1;
    auto picked = sliceCatalog()->search(query);
    ASSERT_EQ(picked.size(), 1u);
    const std::string name(picked[0].name());

    const std::vector<std::string> targets = {
        "/uarchs",
        "/instr/" + name,
        "/instr/" + name + "?uarch=SKL",
        "/instr/" + name + "?uarch=NHM",
        "/instr/NO_SUCH_VARIANT",           // blob-miss 404
        "/instr",                           // usage 400
        "/search?uarch=SKL&mnemonic=ADD&limit=5",
        "/search?tp_min=abc",               // parameter 400
        "/healthz",
        "/nope",                            // router 404
    };
    for (const std::string &target : targets) {
        std::string via_reactor =
            canonical(httpGet(reactor_http.port(), target));
        std::string via_legacy =
            canonical(httpGet(legacy_http.port(), target));
        EXPECT_EQ(via_reactor, via_legacy) << target;
        ASSERT_FALSE(via_reactor.empty()) << target;
    }

    // Repeat a cacheable target: the reactor serves the second hit
    // inline from the cache, and the bytes still match legacy's
    // cache hit (X-Cache stripped by canonical()).
    const std::string cached = "/instr/" + name + "?uarch=SKL";
    EXPECT_EQ(canonical(httpGet(reactor_http.port(), cached)),
              canonical(httpGet(legacy_http.port(), cached)));

    reactor_http.stop();
    legacy_http.stop();
}

// ---------------------------------------------------------------------
// ETag / If-None-Match revalidation.
// ---------------------------------------------------------------------

TEST(ReactorConformance, IfNoneMatchRevalidatesFreeOfBodies)
{
    auto service = makeService();
    server::HttpServer http(*service);
    http.start();

    std::string fresh = httpGet(http.port(), "/uarchs");
    ASSERT_NE(fresh.find("HTTP/1.1 200 OK"), std::string::npos);
    size_t tag_at = fresh.find("ETag: ");
    ASSERT_NE(tag_at, std::string::npos) << fresh;
    std::string etag = fresh.substr(
        tag_at + 6, fresh.find("\r\n", tag_at) - tag_at - 6);
    ASSERT_GE(etag.size(), 2u);

    // Matching tag: 304, no body, no Content-Length/Content-Type,
    // ETag retained so the client can keep revalidating.
    std::string not_modified = httpGet(
        http.port(), "/uarchs", "If-None-Match: " + etag + "\r\n");
    EXPECT_NE(not_modified.find("HTTP/1.1 304 Not Modified"),
              std::string::npos)
        << not_modified;
    EXPECT_EQ(not_modified.find("Content-Length:"),
              std::string::npos);
    EXPECT_EQ(not_modified.find("Content-Type:"), std::string::npos);
    EXPECT_NE(not_modified.find("ETag: " + etag), std::string::npos);
    EXPECT_TRUE(not_modified.ends_with("\r\n\r\n")) << not_modified;

    // Wildcard and stale tags.
    EXPECT_NE(httpGet(http.port(), "/uarchs", "If-None-Match: *\r\n")
                  .find("HTTP/1.1 304"),
              std::string::npos);
    EXPECT_NE(httpGet(http.port(), "/uarchs",
                      "If-None-Match: \"deadbeef\"\r\n")
                  .find("HTTP/1.1 200"),
              std::string::npos);

    // /instr revalidates under the same generation tag — including
    // when the 200 would have come from the response cache.
    db::Query query;
    query.mnemonic = "ADD";
    query.limit = 1;
    auto picked = sliceCatalog()->search(query);
    ASSERT_EQ(picked.size(), 1u);
    const std::string instr =
        "/instr/" + std::string(picked[0].name());
    ASSERT_NE(httpGet(http.port(), instr).find("HTTP/1.1 200"),
              std::string::npos);
    EXPECT_NE(httpGet(http.port(), instr,
                      "If-None-Match: " + etag + "\r\n")
                  .find("HTTP/1.1 304"),
              std::string::npos);

    // A hot swap to different content changes the tag: the old tag
    // stops matching (fresh 200 with a new ETag), the new one holds.
    service->swapCatalog(altCatalog());
    std::string swapped = httpGet(http.port(), "/uarchs",
                                  "If-None-Match: " + etag + "\r\n");
    EXPECT_NE(swapped.find("HTTP/1.1 200 OK"), std::string::npos)
        << swapped;
    size_t new_tag_at = swapped.find("ETag: ");
    ASSERT_NE(new_tag_at, std::string::npos);
    std::string new_etag = swapped.substr(
        new_tag_at + 6, swapped.find("\r\n", new_tag_at) - new_tag_at - 6);
    EXPECT_NE(new_etag, etag);
    EXPECT_NE(httpGet(http.port(), "/uarchs",
                      "If-None-Match: " + new_etag + "\r\n")
                  .find("HTTP/1.1 304"),
              std::string::npos);

    http.stop();
}

// ---------------------------------------------------------------------
// Pipelining: responses stay ordered even when fast-path requests are
// interleaved with pool-dispatched ones.
// ---------------------------------------------------------------------

TEST(ReactorTorture, PipelinedMixedRequestsAnswerInOrder)
{
    auto service = makeService();
    server::HttpServer::Options options;
    options.max_requests_per_connection = 64;
    server::HttpServer http(*service, options);
    http.start();

    int fd = connectTo(http.port());
    ASSERT_GE(fd, 0);

    // One write, 12 pipelined requests alternating /healthz (always
    // dispatched to the pool) and /uarchs (always served inline):
    // the reactor must not let an inline answer overtake an earlier
    // in-flight pool answer.
    std::string batch;
    for (int i = 0; i < 12; ++i) {
        const char *target = i % 2 == 0 ? "/healthz" : "/uarchs";
        batch += std::string("GET ") + target +
                 " HTTP/1.1\r\nHost: x\r\n"
                 "X-Request-Id: pipe-" +
                 std::to_string(i) + "\r\n\r\n";
    }
    sendRaw(fd, batch);

    std::string carry;
    for (int i = 0; i < 12; ++i) {
        std::string response = readOneResponse(fd, carry);
        EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos)
            << "response " << i;
        EXPECT_NE(response.find("X-Request-Id: pipe-" +
                                std::to_string(i) + "\r\n"),
                  std::string::npos)
            << "response " << i << ":\n"
            << response;
        const char *marker =
            i % 2 == 0 ? "\"status\":\"ok\"" : "\"uarchs\"";
        EXPECT_NE(response.find(marker), std::string::npos)
            << "response " << i;
    }
    ::close(fd);
    http.stop();
}

// ---------------------------------------------------------------------
// Slow loris: half-sent requests are shed on the receive deadline
// without blocking other clients.
// ---------------------------------------------------------------------

TEST(ReactorTorture, SlowLorisIsShedOnDeadline)
{
    auto service = makeService();
    server::HttpServer::Options options;
    options.recv_timeout_seconds = 1;
    options.reactor_threads = 1;   // all loris on one loop
    server::HttpServer http(*service, options);
    http.start();

    // Eight connections each dribble half a request head and stall.
    std::vector<int> loris;
    for (int i = 0; i < 8; ++i) {
        int fd = connectTo(http.port());
        ASSERT_GE(fd, 0);
        sendRaw(fd, "GET /healthz HT");
        loris.push_back(fd);
    }

    // A well-behaved client is served immediately despite them.
    std::string health = httpGet(http.port(), "/healthz");
    EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);

    // Every loris is cut loose by the deadline sweep, not served.
    auto t0 = std::chrono::steady_clock::now();
    for (int fd : loris) {
        char chunk[64];
        ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        EXPECT_LE(n, 0);
        ::close(fd);
    }
    EXPECT_LT(std::chrono::steady_clock::now() - t0,
              std::chrono::seconds(10));

    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_EQ(http.activeConnections(), 0u);
    EXPECT_TRUE(http.drain(std::chrono::seconds(1)));
}

// ---------------------------------------------------------------------
// Hot swap (/reload semantics) under concurrent socket load.
// ---------------------------------------------------------------------

TEST(ReactorTorture, HotSwapUnderLoadServesOnlyWholeGenerations)
{
    // Per-generation baselines rendered in isolation.
    auto baseline_of =
        [](std::shared_ptr<const db::DatabaseCatalog> catalog) {
            server::QueryService isolated(catalog, defaultDb());
            HttpRequest request = server::parseRequestHead(
                "GET /uarchs HTTP/1.1\r\nHost: x");
            return std::string(
                isolated.handle(request).bodyView());
        };
    const std::string gen_a = baseline_of(sliceCatalog());
    const std::string gen_b = baseline_of(altCatalog());
    ASSERT_NE(gen_a, gen_b);

    auto service = makeService();
    server::HttpServer http(*service);
    http.start();

    std::atomic<bool> done{false};
    std::atomic<size_t> served{0};
    std::atomic<size_t> foreign{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&] {
            while (!done.load(std::memory_order_relaxed)) {
                std::string wire = httpGet(http.port(), "/uarchs");
                size_t body_at = wire.find("\r\n\r\n");
                if (body_at == std::string::npos)
                    continue;
                std::string body = wire.substr(body_at + 4);
                ++served;
                if (body != gen_a && body != gen_b)
                    ++foreign;
            }
        });
    }

    // Swap while they hammer; every observed body must belong wholly
    // to one generation (blob swaps are atomic with the catalog).
    for (int swap = 0; swap < 20; ++swap) {
        service->swapCatalog(swap % 2 == 0 ? altCatalog()
                                           : sliceCatalog());
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    done.store(true);
    for (std::thread &client : clients)
        client.join();

    EXPECT_GT(served.load(), 0u);
    EXPECT_EQ(foreign.load(), 0u);
    http.stop();
}

// ---------------------------------------------------------------------
// Drain under load through the reactor.
// ---------------------------------------------------------------------

TEST(ReactorTorture, DrainUnderLoadSendsEveryResponseWhole)
{
    auto service = makeService();
    server::HttpServer::Options options;
    options.num_threads = 2;
    server::HttpServer http(*service, options);
    http.start();

    auto complete_response = [](const std::string &wire) {
        size_t head_end = wire.find("\r\n\r\n");
        if (head_end == std::string::npos)
            return false;
        size_t cl = wire.find("Content-Length: ");
        if (cl == std::string::npos || cl > head_end)
            return false;
        size_t body_bytes = static_cast<size_t>(
            std::strtoul(wire.c_str() + cl + 16, nullptr, 10));
        return wire.size() == head_end + 4 + body_bytes;
    };

    std::atomic<size_t> complete{0};
    std::atomic<size_t> truncated{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&, t] {
            // Mix of pool-dispatched and inline-fast targets.
            const std::string target =
                t % 2 == 0 ? "/search?uarch=SKL&limit=5" : "/uarchs";
            while (true) {
                std::string wire = httpGet(http.port(), target);
                if (wire.empty()) {
                    // Connection refused or reset: only acceptable
                    // once draining began.
                    if (http.draining())
                        return;
                    continue;
                }
                if (complete_response(wire))
                    ++complete;
                else
                    ++truncated;
            }
        });
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    bool clean = http.drain(std::chrono::seconds(10));
    for (std::thread &client : clients)
        client.join();

    EXPECT_TRUE(clean);
    EXPECT_GT(complete.load(), 0u);
    EXPECT_EQ(truncated.load(), 0u);
    EXPECT_EQ(http.activeConnections(), 0u);
    EXPECT_FALSE(http.running());
}

// ---------------------------------------------------------------------
// Transport refusals through the reactor.
// ---------------------------------------------------------------------

TEST(ReactorTorture, OversizeAndMalformedRequestsAreRefused)
{
    auto service = makeService();
    server::HttpServer::Options options;
    options.max_request_bytes = 1024;
    server::HttpServer http(*service, options);
    http.start();

    // A request head that never terminates and exceeds the limit.
    int fd = connectTo(http.port());
    ASSERT_GE(fd, 0);
    sendRaw(fd, "GET /healthz HTTP/1.1\r\nHost: x\r\nPadding: " +
                    std::string(4096, 'x'));
    std::string carry;
    std::string oversize = readOneResponse(fd, carry);
    EXPECT_NE(oversize.find("HTTP/1.1 413"), std::string::npos)
        << oversize;
    ::close(fd);

    // Garbage head: 400 with a correlation ID, connection closed.
    fd = connectTo(http.port());
    ASSERT_GE(fd, 0);
    sendRaw(fd, "NOT-HTTP\r\n\r\n");
    std::string garbage = readOneResponse(fd, carry);
    EXPECT_NE(garbage.find("HTTP/1.1 400"), std::string::npos);
    EXPECT_NE(garbage.find("X-Request-Id: "), std::string::npos);
    char byte;
    EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
    ::close(fd);

    // Declared body over the limit, client's ID honored on refusal.
    fd = connectTo(http.port());
    ASSERT_GE(fd, 0);
    sendRaw(fd, "POST /predict HTTP/1.1\r\nHost: x\r\n"
                "X-Request-Id: too-big\r\n"
                "Content-Length: 999999\r\n\r\n");
    std::string big = readOneResponse(fd, carry);
    EXPECT_NE(big.find("HTTP/1.1 413"), std::string::npos) << big;
    EXPECT_NE(big.find("X-Request-Id: too-big\r\n"),
              std::string::npos);
    ::close(fd);

    http.stop();
}

} // namespace
} // namespace uops::test
