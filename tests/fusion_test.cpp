/**
 * @file
 * Tests for the macro-fusion model (simulator) and the fusion
 * detection algorithm (the paper's Section 9 future-work item).
 */

#include <gtest/gtest.h>

#include "core/fusion.h"
#include "core/port_usage.h"
#include "test_util.h"

namespace uops::test {
namespace {

using core::FusionAnalyzer;
using uarch::UArch;

double
pairUops(UArch arch, const std::string &listing)
{
    return measure(arch, listing).totalPortUops();
}

TEST(MacroFusion, CmpJccFusesOnAllGenerations)
{
    for (UArch arch : uarch::allUArches()) {
        // CMP+JZ followed by a NOP fence: 1 fused µop.
        double uops = pairUops(arch, "CMP RAX, RBX\nJZ 1\nNOP");
        EXPECT_NEAR(uops, 1.0, 0.05) << uarch::uarchShortName(arch);
    }
}

TEST(MacroFusion, AluJccFusesOnlyFromSandyBridge)
{
    double nhm = pairUops(UArch::Nehalem, "ADD RAX, RBX\nJZ 1\nNOP");
    EXPECT_NEAR(nhm, 2.0, 0.05); // not fused: ADD µop + branch µop
    double snb = pairUops(UArch::SandyBridge,
                          "ADD RAX, RBX\nJZ 1\nNOP");
    EXPECT_NEAR(snb, 1.0, 0.05); // fused
}

TEST(MacroFusion, FusedUopRunsOnBranchPort)
{
    auto m = measure(UArch::Skylake, "CMP RAX, RBX\nJZ 1\nNOP");
    EXPECT_NEAR(m.port_uops[6], 1.0, 0.05); // SKL branch unit on p6
}

TEST(MacroFusion, SeparatedPairDoesNotFuse)
{
    double uops =
        pairUops(UArch::Skylake, "CMP RAX, RBX\nNOP\nJZ 1\nNOP");
    EXPECT_NEAR(uops, 2.0, 0.05);
}

TEST(MacroFusion, MemoryCompareDoesNotFuse)
{
    double uops =
        pairUops(UArch::Skylake, "CMP [RSI], RBX\nJZ 1\nNOP");
    // load + cmp + branch = 3 µops.
    EXPECT_NEAR(uops, 3.0, 0.05);
}

TEST(MacroFusion, NonFlagProducersDoNotFuse)
{
    double uops = pairUops(UArch::Skylake, "MOVSX RAX, BX\nJZ 1\nNOP");
    EXPECT_NEAR(uops, 2.0, 0.05);
}

TEST(MacroFusion, UnconditionalJmpDoesNotFuse)
{
    double uops = pairUops(UArch::Skylake, "CMP RAX, RBX\nJMP 1\nNOP");
    EXPECT_NEAR(uops, 2.0, 0.05);
}

TEST(MacroFusion, FrontEndBenefitVisible)
{
    // Eight fused pairs issue as 8 µops (2 cycles at 4-wide) instead
    // of 16 — but only one branch port exists, so the dispatch bound
    // dominates: 8 fused µops on p6 -> ~1 cycle per pair. Unfused
    // pairs would also be branch-port bound (1/pair) but with the
    // extra ALU µops the distinction shows in µop counts, which the
    // previous tests assert; here we check the cycles stay branch
    // bound.
    std::string body;
    for (int i = 0; i < 4; ++i)
        body += "CMP RAX, RBX\nJZ 1\n";
    auto m = measure(UArch::Skylake, body);
    EXPECT_NEAR(m.cycles / 4.0, 1.0, 0.1); // one fused µop per pair on p6
}

TEST(MacroFusion, ZeroIdiomPairNotFused)
{
    // SUB RAX, RAX is a zero idiom: handled at rename, not fused.
    auto m = measure(UArch::Skylake, "SUB RAX, RAX\nJZ 1\nNOP");
    EXPECT_NEAR(m.totalPortUops(), 1.0, 0.05); // only the branch
}

// ---------------------------------------------------------------------
// The detection algorithm.
// ---------------------------------------------------------------------

TEST(FusionDetection, ProbeClassifiesPairs)
{
    sim::MeasurementHarness harness(timingDb(UArch::Skylake));
    FusionAnalyzer analyzer(harness);
    const auto &db = defaultDb();

    auto cmp = analyzer.probe(*db.byName("CMP_R64_R64"),
                              *db.byName("JZ_I8"));
    EXPECT_TRUE(cmp.fused);
    EXPECT_NEAR(cmp.uops_per_pair, 1.0, 0.05);
    EXPECT_NEAR(cmp.uops_separated, 2.0, 0.05);

    auto shl = analyzer.probe(*db.byName("SHL_R64_I8"),
                              *db.byName("JZ_I8"));
    EXPECT_FALSE(shl.fused);
}

TEST(FusionDetection, SweepMatrixMatchesModel)
{
    // Expected fusibility on Nehalem vs Skylake.
    auto run = [&](UArch arch) {
        sim::MeasurementHarness harness(timingDb(arch));
        FusionAnalyzer analyzer(harness);
        std::map<std::string, bool> out;
        for (const auto &p : analyzer.sweep())
            out[p.producer->name()] = p.fused;
        return out;
    };
    auto nhm = run(UArch::Nehalem);
    EXPECT_TRUE(nhm.at("CMP_R64_R64"));
    EXPECT_TRUE(nhm.at("TEST_R64_R64"));
    EXPECT_FALSE(nhm.at("ADD_R64_R64"));
    EXPECT_FALSE(nhm.at("INC_R64"));
    EXPECT_FALSE(nhm.at("CMP_R64_M64"));
    EXPECT_FALSE(nhm.at("IMUL_R64_R64"));

    auto skl = run(UArch::Skylake);
    EXPECT_TRUE(skl.at("CMP_R64_R64"));
    EXPECT_TRUE(skl.at("ADD_R64_R64"));
    EXPECT_TRUE(skl.at("SUB_R64_R64"));
    EXPECT_TRUE(skl.at("INC_R64"));
    EXPECT_FALSE(skl.at("SHL_R64_I8"));
    EXPECT_FALSE(skl.at("CMP_R64_M64"));
}

TEST(FusionDetection, PortUsageOfBranchesUnaffectedByGuard)
{
    // Algorithm 1 on a Jcc must still work (the NOP fence prevents
    // accidental fusion with CMP-like blocking instructions).
    sim::MeasurementHarness harness(timingDb(UArch::Skylake));
    core::BlockingFinder finder(harness);
    auto sse = finder.find(false);
    core::PortUsageAnalyzer analyzer(harness, sse, sse);
    auto r = analyzer.analyze(*defaultDb().byName("JZ_I8"), 2);
    EXPECT_EQ(r.usage.toString(), "1*p6");

    auto cmp = analyzer.analyze(*defaultDb().byName("CMP_R64_R64"), 2);
    EXPECT_EQ(cmp.usage.toString(), "1*p0156");
}

} // namespace
} // namespace uops::test
