/**
 * @file
 * Concurrency soak for the /predict compute path: N client threads
 * hammer the service with a mixed kernel corpus while another thread
 * hot-swaps catalog generations, exactly the /reload-under-load
 * scenario. Run under TSan to certify the synchronization story
 * (epoch pinning, the kernel memo, the simulation engine's
 * single-flight table, per-worker simulator state).
 *
 * The torn-response check is byte-level: every concurrent response
 * must be byte-identical to one of the per-generation golden bodies
 * rendered by isolated single-threaded services. A response mixing
 * state from two generations (or two requests) cannot pass.
 */

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/catalog.h"
#include "server/service.h"
#include "test_util.h"

namespace uops::test {
namespace {

using server::HttpRequest;
using server::HttpResponse;

/** Kernels whose responses *differ* across the two generations
 *  (analysis coverage changes), plus generation-independent ones. */
const std::vector<std::string> &
soakCorpus()
{
    static const std::vector<std::string> kernels = {
        "ADD RAX, RBX",
        "ADD RAX, RBX\nADD RBX, RAX",
        "XOR RCX, RCX\nADD RCX, RDX",
        "IMUL RCX, RAX",
        "ADD RAX, RBX\nIMUL RCX, RAX",
        "DIV EBX",
        "MOV RAX, [RBX+8]\nADD RAX, RCX",
        "CMP RAX, RBX\nJNZ 0",
    };
    return kernels;
}

std::shared_ptr<const db::DatabaseCatalog>
catalogWith(std::vector<std::string> mnemonics, int extra_gens)
{
    core::BatchOptions options;
    options.num_threads = 2;
    options.characterizer.filter =
        [mnemonics](const isa::InstrVariant &v) {
            for (const std::string &m : mnemonics)
                if (v.mnemonic() == m)
                    return true;
            return false;
        };
    auto catalog = db::runCatalogSweep(
        defaultDb(), {uarch::UArch::Skylake}, options, nullptr);
    // Distinct generation numbers so the served bodies are
    // distinguishable even where analysis coverage coincides.
    for (int i = 0; i < extra_gens; ++i)
        catalog = db::DatabaseCatalog::splice(*catalog, {});
    return catalog;
}

std::shared_ptr<const db::DatabaseCatalog>
genA()
{
    static const auto catalog = catalogWith({"ADD", "XOR"}, 0);
    return catalog;
}

std::shared_ptr<const db::DatabaseCatalog>
genB()
{
    static const auto catalog =
        catalogWith({"ADD", "XOR", "IMUL"}, 1);
    return catalog;
}

HttpRequest
postPredict(const std::string &listing)
{
    HttpRequest request;
    request.method = "POST";
    request.target = "/predict?uarch=SKL";
    request.path = "/predict";
    request.query["uarch"] = "SKL";
    request.body = listing;
    return request;
}

server::QueryService::Options
soakOptions()
{
    server::QueryService::Options options;
    options.engine.num_threads = 2;
    return options;
}

TEST(PredictSoak, HammeredPredictStaysConsistentAcrossHotSwaps)
{
    // Golden bodies per (kernel, generation), from isolated services.
    std::vector<std::string> golden_a, golden_b;
    {
        server::QueryService service_a(genA(), defaultDb(),
                                       soakOptions());
        server::QueryService service_b(genB(), defaultDb(),
                                       soakOptions());
        for (const std::string &kernel : soakCorpus()) {
            HttpResponse a = service_a.handle(postPredict(kernel));
            HttpResponse b = service_b.handle(postPredict(kernel));
            ASSERT_EQ(a.status, 200) << kernel << "\n" << a.body;
            ASSERT_EQ(b.status, 200) << kernel << "\n" << b.body;
            golden_a.push_back(a.body);
            golden_b.push_back(b.body);
        }
    }

    server::QueryService service(genA(), defaultDb(), soakOptions());

    constexpr int kClientThreads = 4;
    constexpr int kRequestsPerThread = 64;
    constexpr int kSwaps = 24;

    std::atomic<bool> stop_swapping{false};
    std::atomic<uint64_t> mismatches{0};
    std::atomic<uint64_t> errors{0};

    std::thread swapper([&] {
        for (int i = 0; i < kSwaps && !stop_swapping.load(); ++i) {
            service.swapCatalog(i % 2 == 0 ? genB() : genA());
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
    });

    std::vector<std::thread> clients;
    for (int t = 0; t < kClientThreads; ++t) {
        clients.emplace_back([&, t] {
            const auto &corpus = soakCorpus();
            for (int i = 0; i < kRequestsPerThread; ++i) {
                size_t k = static_cast<size_t>(t + i) % corpus.size();
                HttpResponse response =
                    service.handle(postPredict(corpus[k]));
                if (response.status != 200) {
                    ++errors;
                    continue;
                }
                // Epoch pinning: the body must be exactly one
                // generation's rendering, never a blend.
                if (response.body != golden_a[k] &&
                    response.body != golden_b[k])
                    ++mismatches;
            }
        });
    }
    for (std::thread &client : clients)
        client.join();
    stop_swapping.store(true);
    swapper.join();

    EXPECT_EQ(mismatches.load(), 0u);
    EXPECT_EQ(errors.load(), 0u);

    // The memo was exercised across epochs; sanity-check it kept
    // counting rather than serving across generations (each swap
    // invalidates by epoch, so insertions >= corpus size).
    auto memo = service.kernelMemoStats();
    EXPECT_GE(memo.insertions, soakCorpus().size());

    // And the requests all landed in the metrics.
    auto metrics = service.metrics(server::Endpoint::Predict);
    EXPECT_EQ(metrics.requests,
              static_cast<uint64_t>(kClientThreads) *
                  kRequestsPerThread);
}

TEST(PredictSoak, ReloadEndpointUnderConcurrentPredictLoad)
{
    // Same soak through the public /reload path: reloader installs
    // alternating generations while clients predict.
    server::QueryService service(genA(), defaultDb(), soakOptions());
    std::atomic<int> reloads{0};
    service.setReloader(
        [&reloads]() -> server::QueryService::CatalogPtr {
            return (reloads.fetch_add(1) % 2 == 0) ? genB() : genA();
        });

    HttpRequest reload;
    reload.method = "POST";
    reload.target = "/reload";
    reload.path = "/reload";

    std::atomic<uint64_t> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
        threads.emplace_back([&, t] {
            const auto &corpus = soakCorpus();
            for (int i = 0; i < 48; ++i) {
                HttpResponse response = service.handle(postPredict(
                    corpus[static_cast<size_t>(t + i) %
                           corpus.size()]));
                if (response.status != 200)
                    ++failures;
            }
        });
    }
    threads.emplace_back([&] {
        for (int i = 0; i < 12; ++i) {
            HttpResponse response = service.handle(reload);
            if (response.status != 200)
                ++failures;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
    });
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(failures.load(), 0u);
    EXPECT_GE(reloads.load(), 12);
    EXPECT_GT(service.epoch(), 1u);
}

} // namespace
} // namespace uops::test
