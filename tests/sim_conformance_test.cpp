/**
 * @file
 * Simulator-vs-ground-truth conformance properties, swept over the
 * whole instruction set on several generations:
 *
 *  - the µop count observed through the port counters equals the
 *    timing tables' µop count (modulo rename-stage eliminations);
 *  - every observed port lies within the union of the µops' port
 *    sets;
 *  - a dependency chain through the first read-write register operand
 *    measures exactly the dataflow graph's true latency (+ at most
 *    the bypass delay);
 *  - measured throughput is never better than the LP port bound.
 *
 * These are the invariants that make the characterization algorithms'
 * results checkable end to end.
 */

#include <gtest/gtest.h>

#include "core/codegen.h"
#include "core/throughput.h"
#include "lp/simplex.h"
#include "test_util.h"

namespace uops::test {
namespace {

using uarch::UArch;

bool
sweepable(const isa::InstrVariant &v, const uarch::UArchInfo &info)
{
    const auto &a = v.attrs();
    if (!info.supports(v))
        return false;
    if (a.is_system || a.is_serializing || a.is_pause || a.is_cf_reg ||
        a.is_nop || a.has_rep_prefix)
        return false;
    if (a.mov_elim_candidate) // elimination makes counters fractional
        return false;
    if (v.mnemonic() == "VZEROUPPER")
        return false;
    return true;
}

class Conformance : public ::testing::TestWithParam<UArch>
{
};

TEST_P(Conformance, UopCountsAndPortsMatchTables)
{
    UArch arch = GetParam();
    const auto &info = uarchInfo(arch);
    const auto &tdb = timingDb(arch);
    sim::MeasurementHarness harness(tdb);

    int checked = 0;
    for (const auto *v : defaultDb().all()) {
        if (!sweepable(*v, info))
            continue;
        const auto &truth = tdb.timing(*v);
        core::RegPool pool(core::RegPool::Zone::Analyzed);
        auto body = core::independentSequence(*v, pool, 4);
        auto m = harness.measure(body);

        // µop count.
        EXPECT_NEAR(m.totalPortUops() / 4.0, truth.numUops(), 0.05)
            << v->name() << " on " << info.short_name;

        // Port containment.
        uarch::PortMask allowed = uarch::timingPorts(truth.uops);
        for (int p = 0; p < info.num_ports; ++p) {
            if (m.port_uops[static_cast<size_t>(p)] / 4.0 > 0.05) {
                EXPECT_NE(allowed & (1u << p), 0)
                    << v->name() << " dispatched on unexpected port "
                    << p << " on " << info.short_name;
            }
        }
        ++checked;
    }
    EXPECT_GT(checked, 350);
}

TEST_P(Conformance, ChainLatencyMatchesDataflowGraph)
{
    UArch arch = GetParam();
    const auto &info = uarchInfo(arch);
    const auto &tdb = timingDb(arch);
    sim::MeasurementHarness harness(tdb);

    int checked = 0;
    for (const auto *v : defaultDb().all()) {
        if (!sweepable(*v, info))
            continue;
        if (v->attrs().uses_divider || v->attrs().zero_idiom ||
            v->attrs().dep_breaking_same_reg)
            continue;
        if (v->readsMemory() || v->writesMemory())
            continue;
        // First read-write register operand: a natural chain.
        int rw = -1;
        for (size_t i = 0; i < v->numOperands(); ++i) {
            const auto &op = v->operand(i);
            if (op.kind == isa::OpKind::Reg && op.readWritten() &&
                !op.implicit) {
                rw = static_cast<int>(i);
                break;
            }
        }
        if (rw < 0)
            continue;
        // Implicit read-written flags would add a competing loop.
        int flags = v->flagsOperand();
        if (flags >= 0 && v->operand(flags).flags_read.any() &&
            v->operand(flags).flags_written.any())
            continue;

        auto expected = uarch::trueLatency(tdb.timing(*v).uops, rw, rw);
        if (!expected)
            continue;

        core::RegPool pool(core::RegPool::Zone::Analyzed);
        auto body = isa::Kernel{core::makeIndependent(*v, pool)};
        double measured = harness.measure(body).cycles;
        EXPECT_GE(measured, *expected - 0.05)
            << v->name() << " on " << info.short_name;
        EXPECT_LE(measured, *expected + info.bypass_delay + 0.05)
            << v->name() << " on " << info.short_name;
        ++checked;
    }
    EXPECT_GT(checked, 150);
}

TEST_P(Conformance, ThroughputNeverBeatsPortBound)
{
    UArch arch = GetParam();
    const auto &info = uarchInfo(arch);
    const auto &tdb = timingDb(arch);
    sim::MeasurementHarness harness(tdb);
    core::ThroughputAnalyzer tp(harness);

    int checked = 0;
    for (const auto *v : defaultDb().all()) {
        if (!sweepable(*v, info) || v->attrs().uses_divider ||
            v->attrs().has_lock_prefix)
            continue;
        // Cheap subset: every 7th variant for runtime reasons.
        if (v->id() % 7 != 0)
            continue;
        const auto &truth = tdb.timing(*v);
        if (truth.uops.empty())
            continue;
        std::vector<std::pair<std::vector<int>, int>> usage;
        for (const auto &[mask, count] :
             uarch::PortUsage::ofTiming(truth.uops).entries)
            usage.emplace_back(uarch::portsOf(mask), count);
        double bound = lp::minMaxPortLoad(
            static_cast<size_t>(info.num_ports), usage);
        auto r = tp.analyze(*v);
        EXPECT_GE(r.best().toDouble(), bound - 0.07)
            << v->name() << " on " << info.short_name;
        ++checked;
    }
    EXPECT_GT(checked, 40);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Conformance,
                         ::testing::Values(UArch::Nehalem,
                                           UArch::SandyBridge,
                                           UArch::Haswell,
                                           UArch::Skylake),
                         [](const auto &p) {
                             return uarch::uarchShortName(p.param);
                         });

} // namespace
} // namespace uops::test
