/**
 * @file
 * Tests for the simplex LP solver and the port-load LP (Section 5.3.2).
 */

#include <gtest/gtest.h>

#include "lp/simplex.h"

namespace uops::test {
namespace {

using lp::Constraint;
using lp::LinearProgram;
using lp::minMaxPortLoad;
using lp::Relation;
using lp::Solution;
using lp::SolveStatus;

TEST(Simplex, SimpleMaximizationAsMinimization)
{
    // min -x - y  s.t.  x + y <= 4, x <= 3, y <= 2.
    LinearProgram prog(2);
    prog.setObjective(0, -1.0);
    prog.setObjective(1, -1.0);
    prog.addConstraint({1, 1}, Relation::LessEq, 4);
    prog.addConstraint({1, 0}, Relation::LessEq, 3);
    prog.addConstraint({0, 1}, Relation::LessEq, 2);
    Solution sol = prog.solve();
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, -4.0, 1e-9);
}

TEST(Simplex, EqualityConstraints)
{
    // min x + 2y  s.t.  x + y = 3, x - y = 1  ->  x=2, y=1.
    LinearProgram prog(2);
    prog.setObjective(0, 1.0);
    prog.setObjective(1, 2.0);
    prog.addConstraint({1, 1}, Relation::Equal, 3);
    prog.addConstraint({1, -1}, Relation::Equal, 1);
    Solution sol = prog.solve();
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, 4.0, 1e-9);
    EXPECT_NEAR(sol.values[0], 2.0, 1e-9);
    EXPECT_NEAR(sol.values[1], 1.0, 1e-9);
}

TEST(Simplex, GreaterEqual)
{
    // min x  s.t.  x >= 5.
    LinearProgram prog(1);
    prog.setObjective(0, 1.0);
    prog.addConstraint({1}, Relation::GreaterEq, 5);
    Solution sol = prog.solve();
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, 5.0, 1e-9);
}

TEST(Simplex, Infeasible)
{
    LinearProgram prog(1);
    prog.addConstraint({1}, Relation::LessEq, 1);
    prog.addConstraint({1}, Relation::GreaterEq, 2);
    EXPECT_EQ(prog.solve().status, SolveStatus::Infeasible);
}

TEST(Simplex, Unbounded)
{
    LinearProgram prog(1);
    prog.setObjective(0, -1.0);
    prog.addConstraint({-1}, Relation::LessEq, 0);
    EXPECT_EQ(prog.solve().status, SolveStatus::Unbounded);
}

TEST(Simplex, InfeasibleEqualitySystem)
{
    // x + y = 1 and x + y = 2 cannot both hold.
    LinearProgram prog(2);
    prog.setObjective(0, 1.0);
    prog.addConstraint({1, 1}, Relation::Equal, 1);
    prog.addConstraint({1, 1}, Relation::Equal, 2);
    EXPECT_EQ(prog.solve().status, SolveStatus::Infeasible);
}

TEST(Simplex, InfeasibleByNonNegativity)
{
    // x <= -1 conflicts with the implicit x >= 0.
    LinearProgram prog(1);
    prog.addConstraint({1}, Relation::LessEq, -1);
    EXPECT_EQ(prog.solve().status, SolveStatus::Infeasible);
}

TEST(Simplex, UnboundedWithoutConstraints)
{
    // min -x with x >= 0 and no constraints at all.
    LinearProgram prog(1);
    prog.setObjective(0, -1.0);
    EXPECT_EQ(prog.solve().status, SolveStatus::Unbounded);
}

TEST(Simplex, UnboundedDirectionInsideFeasibleCone)
{
    // min -x - y  s.t.  x - y <= 1, y - x <= 1: the diagonal ray
    // x = y -> infinity stays feasible while the objective drops.
    LinearProgram prog(2);
    prog.setObjective(0, -1.0);
    prog.setObjective(1, -1.0);
    prog.addConstraint({1, -1}, Relation::LessEq, 1);
    prog.addConstraint({-1, 1}, Relation::LessEq, 1);
    EXPECT_EQ(prog.solve().status, SolveStatus::Unbounded);
}

TEST(Simplex, BoundedObjectiveOnUnboundedRegion)
{
    // The region is unbounded but the objective is not: min x + y
    // s.t. x + y >= 2 has optimum 2.
    LinearProgram prog(2);
    prog.setObjective(0, 1.0);
    prog.setObjective(1, 1.0);
    prog.addConstraint({1, 1}, Relation::GreaterEq, 2);
    Solution sol = prog.solve();
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, 2.0, 1e-9);
}

TEST(Simplex, DegenerateRedundantConstraints)
{
    // Three constraints meet in the same vertex (2, 2); the redundant
    // one creates a degenerate basis that must not cycle.
    LinearProgram prog(2);
    prog.setObjective(0, -1.0);
    prog.setObjective(1, -1.0);
    prog.addConstraint({1, 0}, Relation::LessEq, 2);
    prog.addConstraint({0, 1}, Relation::LessEq, 2);
    prog.addConstraint({1, 1}, Relation::LessEq, 4);
    Solution sol = prog.solve();
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, -4.0, 1e-9);
    EXPECT_NEAR(sol.values[0], 2.0, 1e-9);
    EXPECT_NEAR(sol.values[1], 2.0, 1e-9);
}

TEST(Simplex, DegenerateZeroRhs)
{
    // All-zero right-hand sides: the origin is the only vertex and
    // every basis is degenerate (the classic cycling setup for
    // non-Bland pivot rules).
    LinearProgram prog(3);
    prog.setObjective(0, -2.0);
    prog.setObjective(1, -3.0);
    prog.setObjective(2, 1.0);
    prog.addConstraint({1, -1, 0}, Relation::LessEq, 0);
    prog.addConstraint({0, 1, -1}, Relation::LessEq, 0);
    prog.addConstraint({1, 1, -2}, Relation::LessEq, 0);
    Solution sol = prog.solve();
    // Terminates (Bland's rule); the ray x=(t,t,t) improves forever.
    EXPECT_EQ(sol.status, SolveStatus::Unbounded);
}

TEST(Simplex, EqualityOnlyFeasiblePoint)
{
    // Equalities pin the unique solution; any objective is optimal
    // there.
    LinearProgram prog(2);
    prog.setObjective(0, -5.0);
    prog.addConstraint({1, 0}, Relation::Equal, 3);
    prog.addConstraint({0, 1}, Relation::Equal, 0);
    Solution sol = prog.solve();
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    EXPECT_NEAR(sol.objective, -15.0, 1e-9);
    EXPECT_NEAR(sol.values[0], 3.0, 1e-9);
    EXPECT_NEAR(sol.values[1], 0.0, 1e-9);
}

TEST(Simplex, DegenerateNoCycle)
{
    // Degenerate vertex; Bland's rule must terminate.
    LinearProgram prog(3);
    prog.setObjective(0, -0.75);
    prog.setObjective(1, 150.0);
    prog.setObjective(2, -0.02);
    prog.addConstraint({0.25, -60, -0.04}, Relation::LessEq, 0);
    prog.addConstraint({0.5, -90, -0.02}, Relation::LessEq, 0);
    prog.addConstraint({0, 0, 1}, Relation::LessEq, 1);
    Solution sol = prog.solve();
    EXPECT_EQ(sol.status, SolveStatus::Optimal);
}

// ---------------------------------------------------------------------
// Port-load LP.
// ---------------------------------------------------------------------

TEST(PortLoadLp, SingleUopOverKPorts)
{
    // 1 µop over k ports: load 1/k.
    for (int k = 1; k <= 6; ++k) {
        std::vector<int> ports;
        for (int p = 0; p < k; ++p)
            ports.push_back(p);
        double load = minMaxPortLoad(8, {{ports, 1}});
        EXPECT_NEAR(load, 1.0 / k, 1e-9) << "k=" << k;
    }
}

TEST(PortLoadLp, EmptyUsage)
{
    EXPECT_DOUBLE_EQ(minMaxPortLoad(8, {}), 0.0);
}

TEST(PortLoadLp, DisjointGroups)
{
    // 2 µops on {0}, 3 µops on {1}: bottleneck 3.
    double load = minMaxPortLoad(8, {{{0}, 2}, {{1}, 3}});
    EXPECT_NEAR(load, 3.0, 1e-9);
}

TEST(PortLoadLp, OverlapSharing)
{
    // 2*p05 (the PBLENDVB case): spread one µop per port -> 1.0.
    EXPECT_NEAR(minMaxPortLoad(6, {{{0, 5}, 2}}), 1.0, 1e-9);
    // 1*p0156 + 1*p06 (the ADC case): 0.5.
    EXPECT_NEAR(minMaxPortLoad(8, {{{0, 1, 5, 6}, 1}, {{0, 6}, 1}}), 0.5,
                1e-9);
    // VHADDPD on SKL: 1*p01 + 2*p5: port 5 is the bottleneck.
    EXPECT_NEAR(minMaxPortLoad(8, {{{0, 1}, 1}, {{5}, 2}}), 2.0, 1e-9);
}

TEST(PortLoadLp, FractionalOptimum)
{
    // 3 µops on {0,1}: 1.5 per port.
    EXPECT_NEAR(minMaxPortLoad(8, {{{0, 1}, 3}}), 1.5, 1e-9);
}

/** Property sweep: LP result matches a brute-force lower bound. */
class PortLoadProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(PortLoadProperty, MatchesCountingBound)
{
    // Deterministic pseudo-random usages; check the LP optimum equals
    // the combinatorial bound max over port subsets S of
    // (µops restricted to S) / |S|.
    int seed = GetParam();
    uint64_t state = static_cast<uint64_t>(seed) * 2654435761u + 12345;
    auto rnd = [&](int bound) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return static_cast<int>((state >> 33) % bound);
    };
    const int num_ports = 6;
    std::vector<std::pair<std::vector<int>, int>> usage;
    int groups = 1 + rnd(4);
    for (int g = 0; g < groups; ++g) {
        int mask = 1 + rnd((1 << num_ports) - 1);
        std::vector<int> ports;
        for (int p = 0; p < num_ports; ++p)
            if (mask & (1 << p))
                ports.push_back(p);
        usage.emplace_back(ports, 1 + rnd(4));
    }

    double lp_value = minMaxPortLoad(num_ports, usage);

    // max-flow duality: optimum = max over subsets S of ports of
    // sum of µops whose port set is contained in S, divided by |S|.
    double bound = 0.0;
    for (int s_mask = 1; s_mask < (1 << num_ports); ++s_mask) {
        int size = __builtin_popcount(static_cast<unsigned>(s_mask));
        int uops = 0;
        for (const auto &[ports, count] : usage) {
            bool inside = true;
            for (int p : ports)
                if (!(s_mask & (1 << p)))
                    inside = false;
            if (inside)
                uops += count;
        }
        bound = std::max(bound, static_cast<double>(uops) / size);
    }
    EXPECT_NEAR(lp_value, bound, 1e-6) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PortLoadProperty,
                         ::testing::Range(0, 40));

} // namespace
} // namespace uops::test
