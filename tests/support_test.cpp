/**
 * @file
 * Unit tests for the support library: strings, XML, RNG, stats.
 */

#include <gtest/gtest.h>

#include "support/rng.h"
#include "support/stats.h"
#include "support/status.h"
#include "support/strings.h"
#include "support/xml.h"

namespace uops::test {
namespace {

// ---------------------------------------------------------------------
// Strings.
// ---------------------------------------------------------------------

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  a b  "), "a b");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("\t\n x \r"), "x");
    EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, Split)
{
    EXPECT_EQ(split("a,b,c", ','),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("a, b , c", ','),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "c"}));
    EXPECT_EQ(split("a,,c", ',', true, true),
              (std::vector<std::string>{"a", "", "c"}));
    EXPECT_TRUE(split("", ',').empty());
}

TEST(Strings, SplitWhitespace)
{
    EXPECT_EQ(splitWhitespace("  a\tb  c\n"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(Strings, Join)
{
    EXPECT_EQ(join({"a", "b"}, "+"), "a+b");
    EXPECT_EQ(join({}, "+"), "");
    EXPECT_EQ(join({"x"}, ", "), "x");
}

TEST(Strings, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("MOVSX", "MOV"));
    EXPECT_FALSE(startsWith("MO", "MOV"));
    EXPECT_TRUE(endsWith("ADDPS", "PS"));
    EXPECT_FALSE(endsWith("S", "PS"));
}

TEST(Strings, Case)
{
    EXPECT_EQ(toUpper("xmm0"), "XMM0");
    EXPECT_EQ(toLower("XMM0"), "xmm0");
}

TEST(Strings, ParseInt)
{
    EXPECT_EQ(parseInt("42"), 42);
    EXPECT_EQ(parseInt(" -7 "), -7);
    EXPECT_FALSE(parseInt("4x").has_value());
    EXPECT_FALSE(parseInt("").has_value());
}

TEST(Strings, ParseDouble)
{
    EXPECT_DOUBLE_EQ(*parseDouble("0.25"), 0.25);
    EXPECT_FALSE(parseDouble("1.2.3").has_value());
}

TEST(Strings, SplitKeyValue)
{
    auto [k, v] = splitKeyValue("ext=AVX");
    EXPECT_EQ(k, "ext");
    EXPECT_EQ(v, "AVX");
    auto [k2, v2] = splitKeyValue("flag");
    EXPECT_EQ(k2, "flag");
    EXPECT_EQ(v2, "");
}

// ---------------------------------------------------------------------
// XML.
// ---------------------------------------------------------------------

TEST(Xml, EscapeRoundTrip)
{
    EXPECT_EQ(xmlEscape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
}

TEST(Xml, WriteSimple)
{
    XmlNode root("root");
    root.attr("x", 1L);
    root.addChild("leaf").attr("name", "a<b");
    std::string s = root.toString();
    EXPECT_NE(s.find("<root x=\"1\">"), std::string::npos);
    EXPECT_NE(s.find("name=\"a&lt;b\""), std::string::npos);
}

TEST(Xml, ParseRoundTrip)
{
    XmlNode root("instructionSet");
    root.attr("count", 2L);
    auto &a = root.addChild("instruction");
    a.attr("name", "ADD_R64_R64");
    a.addChild("operand").attr("access", "rw");
    root.addChild("instruction").attr("name", "X<Y");

    auto parsed = parseXml(root.toString());
    EXPECT_EQ(parsed->name(), "instructionSet");
    EXPECT_EQ(parsed->getAttr("count"), "2");
    auto instrs = parsed->childrenNamed("instruction");
    ASSERT_EQ(instrs.size(), 2u);
    EXPECT_EQ(instrs[0]->getAttr("name"), "ADD_R64_R64");
    EXPECT_EQ(instrs[1]->getAttr("name"), "X<Y");
    ASSERT_NE(instrs[0]->firstChild("operand"), nullptr);
}

TEST(Xml, ParseWithCommentsAndProlog)
{
    auto n = parseXml("<?xml version=\"1.0\"?>\n"
                      "<!-- header -->\n"
                      "<a><!-- inner --><b k=\"v\"/></a>");
    EXPECT_EQ(n->name(), "a");
    ASSERT_NE(n->firstChild("b"), nullptr);
    EXPECT_EQ(n->firstChild("b")->getAttr("k"), "v");
}

TEST(Xml, ParseText)
{
    auto n = parseXml("<a>hello &amp; goodbye</a>");
    EXPECT_EQ(n->text(), "hello & goodbye");
}

TEST(Xml, ParseErrors)
{
    EXPECT_THROW(parseXml("<a>"), FatalError);
    EXPECT_THROW(parseXml("<a></b>"), FatalError);
    EXPECT_THROW(parseXml("<a attr></a>"), FatalError);
    EXPECT_THROW(parseXml("<a/><b/>"), FatalError);
}

// ---------------------------------------------------------------------
// RNG and stats.
// ---------------------------------------------------------------------

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        EXPECT_LT(r.nextBelow(10), 10u);
    }
}

TEST(Stats, MeanMedianMin)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
    EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
    EXPECT_DOUBLE_EQ(minOf({4, 1, 2}), 1.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, RoundCycles)
{
    EXPECT_EQ(roundCycles(0.99), Cycles::fromHundredths(100));
    EXPECT_EQ(roundCycles(1.02), Cycles::fromHundredths(100));
    EXPECT_EQ(roundCycles(0.25), Cycles::fromHundredths(25));
    EXPECT_EQ(roundCycles(0.334), Cycles::fromHundredths(33));
    EXPECT_TRUE(cyclesEqual(1.0, 1.04));
    EXPECT_FALSE(cyclesEqual(1.0, 1.2));
}

// ---------------------------------------------------------------------
// The canonical fixed-point cycle type.
// ---------------------------------------------------------------------

TEST(Cycles, CanonicalTextForms)
{
    EXPECT_EQ(Cycles::fromHundredths(0).str(), "0");
    EXPECT_EQ(Cycles::fromHundredths(400).str(), "4");
    EXPECT_EQ(Cycles::fromHundredths(250).str(), "2.5");
    EXPECT_EQ(Cycles::fromHundredths(33).str(), "0.33");
    EXPECT_EQ(Cycles::fromHundredths(7).str(), "0.07");
    EXPECT_EQ(Cycles::fromHundredths(123456).str(), "1234.56");
    EXPECT_EQ(Cycles::fromHundredths(-150).str(), "-1.5");
}

TEST(Cycles, ParseAcceptsCanonicalAndRejectsTheRest)
{
    EXPECT_EQ(Cycles::parse("4"), Cycles::fromHundredths(400));
    EXPECT_EQ(Cycles::parse("2.5"), Cycles::fromHundredths(250));
    EXPECT_EQ(Cycles::parse("0.33"), Cycles::fromHundredths(33));
    EXPECT_EQ(Cycles::parse("-1.5"), Cycles::fromHundredths(-150));
    // Three fraction digits mark a foreign document carrying more
    // precision than the reporting granularity: not parseable as
    // exact Cycles (callers re-round through a double instead).
    EXPECT_FALSE(Cycles::parse("0.333").has_value());
    EXPECT_FALSE(Cycles::parse("1e2").has_value());
    EXPECT_FALSE(Cycles::parse("").has_value());
    EXPECT_FALSE(Cycles::parse("4.").has_value());
    EXPECT_FALSE(Cycles::parse(".5").has_value());
    EXPECT_FALSE(Cycles::parse("x").has_value());
    // A second sign consumed by from_chars would mangle the value
    // ("--1" -> +1); the remainder after the sign must be digits.
    EXPECT_FALSE(Cycles::parse("--1").has_value());
    EXPECT_FALSE(Cycles::parse("-+1").has_value());
    EXPECT_FALSE(Cycles::parse("+1").has_value());
    // A whole part whose *100 would overflow int64 is rejected, not
    // wrapped (untrusted document text reaches parse()) — but only
    // genuinely unrepresentable values: the top of the range still
    // round-trips.
    EXPECT_FALSE(Cycles::parse("100000000000000000").has_value());
    EXPECT_FALSE(
        Cycles::parse("9223372036854775807.99").has_value());
    const Cycles top = Cycles::fromHundredths(
        std::numeric_limits<int64_t>::max());
    EXPECT_EQ(Cycles::parse(top.str()), top);
}

TEST(Cycles, EveryRepresentableValueRoundTripsExactly)
{
    // Property: str() and parse() are exact inverses for every
    // representable value — exhaustively to 1200.00 cycles, then
    // strided through the int64 range (the double-based text chain
    // this replaces could not make that promise past 2^53).
    for (int64_t h = -12000; h <= 120000; ++h) {
        Cycles value = Cycles::fromHundredths(h);
        auto back = Cycles::parse(value.str());
        ASSERT_TRUE(back.has_value()) << value.str();
        ASSERT_EQ(*back, value) << value.str();
    }
    for (int64_t h = 1; h < (int64_t{1} << 55); h = h * 7 + 13) {
        Cycles value = Cycles::fromHundredths(h);
        auto back = Cycles::parse(value.str());
        ASSERT_TRUE(back.has_value()) << value.str();
        ASSERT_EQ(*back, value) << value.str();
    }
}

TEST(Cycles, TextFormMatchesLegacyDoubleFormatting)
{
    // The byte-identity bridge: in the measurable range, str() equals
    // what the XML writer used to print for the rounded double, so
    // v2 artifacts are byte-identical to v1's. (Beyond 6 significant
    // digits the legacy ostream formatting truncated; Cycles stays
    // exact, which is the improvement, not a regression.)
    for (int64_t h = 0; h <= 200000; ++h) {
        Cycles value = Cycles::fromHundredths(h);
        ASSERT_EQ(value.str(), xmlFormatDouble(value.toDouble()))
            << h;
    }
}

TEST(Cycles, RoundAppliesReportingGranularity)
{
    EXPECT_EQ(Cycles::round(3.9999999), Cycles::fromHundredths(400));
    EXPECT_EQ(Cycles::round(4.05), Cycles::fromHundredths(400));
    EXPECT_EQ(Cycles::round(4.051), Cycles::fromHundredths(405));
    EXPECT_EQ(Cycles::round(0.125), Cycles::fromHundredths(13));
    EXPECT_EQ(Cycles::round(11.0 / 3.0), Cycles::fromHundredths(367));
}

TEST(Cycles, RoundRejectsNonFiniteAndOutOfRangeValues)
{
    // Foreign results XML can carry "1e300", "inf" or "nan" through
    // the parseDouble fallback; a loud error beats llround garbage.
    EXPECT_THROW(Cycles::round(1e300), FatalError);
    EXPECT_THROW(
        Cycles::round(std::numeric_limits<double>::infinity()),
        FatalError);
    EXPECT_THROW(
        Cycles::round(std::numeric_limits<double>::quiet_NaN()),
        FatalError);
    EXPECT_NO_THROW(Cycles::round(8.9e15));
}

TEST(Cycles, CeilMatchesBlockRepSemantics)
{
    EXPECT_EQ(Cycles::fromHundredths(0).ceil(), 0);
    EXPECT_EQ(Cycles::fromHundredths(1).ceil(), 1);
    EXPECT_EQ(Cycles::fromHundredths(100).ceil(), 1);
    EXPECT_EQ(Cycles::fromHundredths(101).ceil(), 2);
    EXPECT_EQ(Cycles::fromHundredths(399).ceil(), 4);
    EXPECT_EQ(Cycles::fromHundredths(400).ceil(), 4);
}

TEST(Status, FatalAndPanic)
{
    EXPECT_THROW(fatal("bad ", 42), FatalError);
    EXPECT_THROW(panic("bug"), PanicError);
    EXPECT_NO_THROW(fatalIf(false, "x"));
    EXPECT_THROW(fatalIf(true, "x"), FatalError);
    EXPECT_THROW(panicIf(true, "x"), PanicError);
}

} // namespace
} // namespace uops::test
