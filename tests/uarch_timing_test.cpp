/**
 * @file
 * Property tests over the ground-truth timing tables: every supported
 * (microarchitecture, variant) pair must synthesize a well-formed µop
 * decomposition, and the documented per-uarch special cases must hold.
 */

#include <gtest/gtest.h>

#include "test_util.h"
#include "uarch/timing_synth.h"

namespace uops::test {
namespace {

using uarch::Domain;
using uarch::OpRef;
using uarch::PortMask;
using uarch::portMask;
using uarch::TimingInfo;
using uarch::UArch;

class TimingProperties : public ::testing::TestWithParam<UArch>
{
};

TEST_P(TimingProperties, AllVariantsWellFormed)
{
    UArch arch = GetParam();
    const auto &info = uarchInfo(arch);
    const auto &tdb = timingDb(arch);
    PortMask valid_ports =
        static_cast<PortMask>((1u << info.num_ports) - 1);

    for (const auto *v : defaultDb().all()) {
        if (!info.supports(*v))
            continue;
        const TimingInfo &t = tdb.timing(*v);

        std::set<int> temps_written;
        for (const auto &u : t.uops) {
            // Ports: non-empty and within the machine.
            EXPECT_NE(u.ports, 0) << v->name();
            EXPECT_EQ(u.ports & ~valid_ports, 0)
                << v->name() << " uses ports beyond the machine";
            // Latency sane.
            EXPECT_GE(u.latency, 1) << v->name();
            EXPECT_LE(u.latency, 120) << v->name();
            if (!u.write_extra.empty())
                EXPECT_EQ(u.write_extra.size(), u.writes.size())
                    << v->name();
            // Dataflow: temps are written before read.
            for (const auto &r : u.reads) {
                if (r.kind == OpRef::Kind::Temp)
                    EXPECT_TRUE(temps_written.count(r.index))
                        << v->name() << ": temp read before write";
                if (r.kind == OpRef::Kind::Operand) {
                    ASSERT_LT(static_cast<size_t>(r.index),
                              v->numOperands())
                        << v->name();
                }
            }
            for (const auto &w : u.writes) {
                if (w.kind == OpRef::Kind::Temp)
                    temps_written.insert(w.index);
                // Memory writes only through MemData.
                EXPECT_NE(w.kind, OpRef::Kind::MemAddr) << v->name();
            }
            // Unit/port consistency with the descriptor.
            if (u.domain == Domain::Load)
                EXPECT_EQ(u.ports, info.load_ports) << v->name();
            if (u.domain == Domain::Sta)
                EXPECT_EQ(u.ports, info.store_addr_ports) << v->name();
            if (u.domain == Domain::Std)
                EXPECT_EQ(u.ports, info.store_data_ports) << v->name();
            // Divider occupancy only with sensible values.
            if (u.div_occupancy > 0) {
                EXPECT_TRUE(v->attrs().uses_divider) << v->name();
                EXPECT_LE(u.div_occupancy, u.latency) << v->name();
            }
        }

        // Memory-reading variants must have a load µop; memory-writing
        // variants a store-address and a store-data µop.
        auto count_domain = [&](Domain d) {
            int n = 0;
            for (const auto &u : t.uops)
                if (u.domain == d)
                    ++n;
            return n;
        };
        if (v->readsMemory() && !v->attrs().is_system)
            EXPECT_GE(count_domain(Domain::Load), 1) << v->name();
        if (v->writesMemory() && !v->attrs().is_system)
        {
            EXPECT_GE(count_domain(Domain::Sta), 1) << v->name();
            EXPECT_GE(count_domain(Domain::Std), 1) << v->name();
        }

        // Zero idioms / NOPs aside, each variant executes at least one
        // µop.
        if (!v->attrs().is_nop && v->mnemonic() != "VZEROUPPER")
            EXPECT_GE(t.numUops(), 1) << v->name();
        EXPECT_LE(t.numUops(), 24) << v->name();
    }
}

TEST_P(TimingProperties, LatencyPathsExistForRegisterPairs)
{
    // For every (register/flags source, register/flags dest) pair of a
    // non-divider variant, the µop dataflow must provide a dependency
    // path (the refined latency definition is total on these pairs).
    UArch arch = GetParam();
    const auto &info = uarchInfo(arch);
    const auto &tdb = timingDb(arch);
    for (const auto *v : defaultDb().all()) {
        if (!info.supports(*v))
            continue;
        if (v->attrs().is_nop || v->attrs().is_system ||
            v->attrs().has_rep_prefix || v->mnemonic() == "VZEROUPPER" ||
            v->mnemonic() == "XCHG" || v->mnemonic() == "XADD")
            continue;
        const TimingInfo &t = tdb.timing(*v);
        if (t.uops.empty())
            continue;
        // Implicit RSP updates are renamed away by the stack engine:
        // PUSH/POP/CALL/RET have no dataflow through RSP by design.
        auto is_stack_pointer = [&](int op) {
            const auto &spec = v->operand(static_cast<size_t>(op));
            return spec.implicit && spec.kind == isa::OpKind::Reg &&
                   spec.reg_class == isa::RegClass::Gpr64 &&
                   spec.fixed_reg == 4;
        };
        for (int s : v->sourceOperands()) {
            if (v->operand(s).kind == isa::OpKind::Mem ||
                is_stack_pointer(s))
                continue;
            for (int d : v->destOperands()) {
                if (v->operand(d).kind == isa::OpKind::Mem ||
                    is_stack_pointer(d))
                    continue;
                auto lat = uarch::trueLatency(t.uops, s, d);
                EXPECT_TRUE(lat.has_value())
                    << v->name() << " lat(op" << s << "->op" << d
                    << ") missing on " << info.short_name;
                if (lat)
                    EXPECT_GE(*lat, 1) << v->name();
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllUArches, TimingProperties,
                         ::testing::ValuesIn(uarch::allUArches()),
                         [](const auto &p) {
                             return uarch::uarchShortName(p.param);
                         });

// ---------------------------------------------------------------------
// Documented per-uarch structures (the paper's case studies).
// ---------------------------------------------------------------------

TEST(TimingCases, AesdecStructure)
{
    auto uops_of = [](UArch arch) {
        return timingDb(arch).timing(*defaultDb().byName("AESDEC_X_X"));
    };
    EXPECT_EQ(uops_of(UArch::Westmere).numUops(), 3);
    EXPECT_EQ(uops_of(UArch::SandyBridge).numUops(), 2);
    EXPECT_EQ(uops_of(UArch::IvyBridge).numUops(), 2);
    EXPECT_EQ(uops_of(UArch::Haswell).numUops(), 1);
    EXPECT_EQ(uops_of(UArch::Skylake).numUops(), 1);

    // True pair latencies via the dataflow graph.
    const auto &snb = uops_of(UArch::SandyBridge);
    EXPECT_EQ(uarch::trueLatency(snb.uops, 0, 0), 8);
    EXPECT_EQ(uarch::trueLatency(snb.uops, 1, 0), 1);
    const auto &wsm = uops_of(UArch::Westmere);
    EXPECT_EQ(uarch::trueLatency(wsm.uops, 0, 0), 6);
    EXPECT_EQ(uarch::trueLatency(wsm.uops, 1, 0), 6);
    const auto &hsw = uops_of(UArch::Haswell);
    EXPECT_EQ(uarch::trueLatency(hsw.uops, 0, 0), 7);
    EXPECT_EQ(uarch::trueLatency(hsw.uops, 1, 0), 7);
}

TEST(TimingCases, ShldSameRegOverrideOnlySkylakePlus)
{
    const auto *shld = defaultDb().byName("SHLD_R64_R64_I8");
    EXPECT_FALSE(
        timingDb(UArch::Nehalem).timing(*shld).same_reg_uops.has_value());
    EXPECT_FALSE(
        timingDb(UArch::Haswell).timing(*shld).same_reg_uops.has_value());
    const auto &skl = timingDb(UArch::Skylake).timing(*shld);
    ASSERT_TRUE(skl.same_reg_uops.has_value());
    EXPECT_EQ(skl.same_reg_uops->size(), 1u);
    EXPECT_EQ((*skl.same_reg_uops)[0].latency, 1);
    // Kaby Lake and Coffee Lake behave like Skylake.
    EXPECT_TRUE(timingDb(UArch::KabyLake)
                    .timing(*shld)
                    .same_reg_uops.has_value());
    EXPECT_TRUE(timingDb(UArch::CoffeeLake)
                    .timing(*shld)
                    .same_reg_uops.has_value());
}

TEST(TimingCases, PortUsageStrings)
{
    auto usage = [](UArch arch, const char *name) {
        return uarch::PortUsage::ofTiming(
                   timingDb(arch).timing(*defaultDb().byName(name)).uops)
            .toString();
    };
    EXPECT_EQ(usage(UArch::Nehalem, "PBLENDVB_X_X_Xi"), "2*p05");
    EXPECT_EQ(usage(UArch::Haswell, "ADC_R64_R64"), "1*p06+1*p0156");
    EXPECT_EQ(usage(UArch::Broadwell, "ADC_R64_R64"), "1*p0156");
    EXPECT_EQ(usage(UArch::Skylake, "MOVQ2DQ_X_MM"), "1*p0+1*p015");
    EXPECT_EQ(usage(UArch::Skylake, "VHADDPD_X_X_X"), "1*p01+2*p5");
    EXPECT_EQ(usage(UArch::Haswell, "MOVDQ2Q_MM_X"), "1*p5+1*p015");
    EXPECT_EQ(usage(UArch::Haswell, "SAHF_R8Hi"), "1*p06");
    EXPECT_EQ(usage(UArch::Nehalem, "SAHF_R8Hi"), "1*p015");
}

TEST(TimingCases, MulWideningHasTwoResultLatencies)
{
    const auto &t = timingDb(UArch::Skylake)
                        .timing(*defaultDb().byName("MUL_R64i_R64i_R64"));
    // Operand 0 = RDX (high), operand 1 = RAX (low).
    auto lo = uarch::trueLatency(t.uops, 2, 1);
    auto hi = uarch::trueLatency(t.uops, 2, 0);
    ASSERT_TRUE(lo && hi);
    EXPECT_EQ(*lo, 3);
    EXPECT_EQ(*hi, 4);
}

TEST(TimingCases, ShiftFlagsLater)
{
    const auto *shl = defaultDb().byName("SHL_R64_I8");
    const auto &t = timingDb(UArch::Skylake).timing(*shl);
    int flags_op = shl->flagsOperand();
    auto reg_lat = uarch::trueLatency(t.uops, 0, 0);
    auto flag_lat = uarch::trueLatency(t.uops, 0, flags_op);
    ASSERT_TRUE(reg_lat && flag_lat);
    EXPECT_EQ(*reg_lat, 1);
    EXPECT_EQ(*flag_lat, 2); // flag result one cycle later
}

TEST(TimingCases, DividerValueDependence)
{
    const auto &t =
        timingDb(UArch::Haswell).timing(*defaultDb().byName("DIVPS_X_X"));
    auto fast = uarch::trueLatency(t.uops, 0, 0, false);
    auto slow = uarch::trueLatency(t.uops, 0, 0, true);
    ASSERT_TRUE(fast && slow);
    EXPECT_GT(*slow, *fast);
    // Skylake's FP divider is value-independent in this model.
    const auto &skl =
        timingDb(UArch::Skylake).timing(*defaultDb().byName("DIVPS_X_X"));
    EXPECT_EQ(uarch::trueLatency(skl.uops, 0, 0, false),
              uarch::trueLatency(skl.uops, 0, 0, true));
}

TEST(TimingCases, UnsupportedVariantThrows)
{
    // AVX does not exist on Nehalem.
    EXPECT_THROW(uarch::synthesizeTiming(
                     *defaultDb().byName("VADDPS_Y_Y_Y"),
                     UArch::Nehalem),
                 FatalError);
}

TEST(PortMaskUtils, NamesAndParsing)
{
    EXPECT_EQ(uarch::portMaskName(portMask({0, 1, 5})), "p015");
    EXPECT_EQ(uarch::portMaskName(0), "p-");
    EXPECT_EQ(uarch::parsePortMask("p015"), portMask({0, 1, 5}));
    EXPECT_EQ(uarch::portCount(portMask({2, 3, 7})), 3);
    EXPECT_THROW(uarch::parsePortMask("xyz"), FatalError);
}

TEST(UArchInfo, DescriptorSanity)
{
    for (auto arch : uarch::allUArches()) {
        const auto &info = uarchInfo(arch);
        EXPECT_TRUE(info.num_ports == 6 || info.num_ports == 8);
        EXPECT_GE(info.rs_size, 30);
        EXPECT_GE(info.rob_size, info.rs_size);
        EXPECT_NE(info.load_ports, 0);
        EXPECT_NE(info.store_addr_ports, 0);
        EXPECT_EQ(info.store_data_ports, portMask({4}));
        EXPECT_FALSE(info.processor.empty());
        // Parse round trip of the short name.
        EXPECT_EQ(uarch::parseUArch(info.short_name), arch);
    }
    EXPECT_EQ(uarchInfo(UArch::Nehalem).num_ports, 6);
    EXPECT_EQ(uarchInfo(UArch::Haswell).num_ports, 8);
    EXPECT_FALSE(uarchInfo(UArch::Nehalem).gpr_move_elim);
    EXPECT_TRUE(uarchInfo(UArch::IvyBridge).gpr_move_elim);
    EXPECT_FALSE(
        uarchInfo(UArch::Nehalem).hasExtension(isa::Extension::Aes));
    EXPECT_TRUE(
        uarchInfo(UArch::Westmere).hasExtension(isa::Extension::Aes));
}

} // namespace
} // namespace uops::test
