/**
 * @file
 * Tests for the ISA layer: registers, flags, the XED-style table DSL,
 * the instruction database, the assembler, and the XML round trip.
 */

#include <gtest/gtest.h>

#include "isa/parser.h"
#include "isa/xml_export.h"
#include "test_util.h"

namespace uops::test {
namespace {

using isa::Extension;
using isa::FlagMask;
using isa::InstrDb;
using isa::OpKind;
using isa::Reg;
using isa::RegClass;

// ---------------------------------------------------------------------
// Registers.
// ---------------------------------------------------------------------

TEST(Registers, ClassProperties)
{
    EXPECT_EQ(isa::regClassWidth(RegClass::Gpr64), 64);
    EXPECT_EQ(isa::regClassWidth(RegClass::Xmm), 128);
    EXPECT_EQ(isa::regClassWidth(RegClass::Ymm), 256);
    EXPECT_EQ(isa::regClassCount(RegClass::Gpr8High), 4);
    EXPECT_TRUE(isa::isGprClass(RegClass::Gpr8));
    EXPECT_FALSE(isa::isGprClass(RegClass::Xmm));
    EXPECT_TRUE(isa::isVecClass(RegClass::Ymm));
}

/** Name/parse round trip over every register of every class. */
class RegisterRoundTrip : public ::testing::TestWithParam<RegClass>
{
};

TEST_P(RegisterRoundTrip, NameParse)
{
    RegClass cls = GetParam();
    for (int i = 0; i < isa::regClassCount(cls); ++i) {
        Reg reg{cls, i};
        std::string name = isa::regName(reg);
        auto parsed = isa::parseRegName(name);
        ASSERT_TRUE(parsed.has_value()) << name;
        EXPECT_EQ(*parsed, reg) << name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, RegisterRoundTrip,
    ::testing::Values(RegClass::Gpr8, RegClass::Gpr8High, RegClass::Gpr16,
                      RegClass::Gpr32, RegClass::Gpr64, RegClass::Mmx,
                      RegClass::Xmm, RegClass::Ymm));

TEST(Registers, Aliasing)
{
    // AL, AX, EAX, RAX, AH alias the same unit.
    auto unit = [](const char *n) {
        return isa::regUnit(*isa::parseRegName(n));
    };
    EXPECT_EQ(unit("AL"), unit("RAX"));
    EXPECT_EQ(unit("AH"), unit("RAX"));
    EXPECT_EQ(unit("AX"), unit("EAX"));
    EXPECT_NE(unit("RAX"), unit("RBX"));
    // XMM3 and YMM3 alias; MM3 does not.
    EXPECT_EQ(unit("XMM3"), unit("YMM3"));
    EXPECT_NE(unit("MM3"), unit("XMM3"));
}

TEST(Registers, ParseRejectsUnknown)
{
    EXPECT_FALSE(isa::parseRegName("RAXX").has_value());
    EXPECT_FALSE(isa::parseRegName("XMM16").has_value());
    EXPECT_FALSE(isa::parseRegName("MM8").has_value());
    EXPECT_FALSE(isa::parseRegName("").has_value());
}

TEST(Flags, MaskParsing)
{
    FlagMask m = FlagMask::fromLetters("CZSPO");
    EXPECT_TRUE(m.cf);
    EXPECT_TRUE(m.spazo);
    EXPECT_FALSE(m.af);
    FlagMask a = FlagMask::fromLetters("A");
    EXPECT_TRUE(a.af);
    EXPECT_FALSE(a.cf);
    EXPECT_EQ(m.units().size(), 2u);
    EXPECT_THROW(FlagMask::fromLetters("X"), FatalError);
}

// ---------------------------------------------------------------------
// DSL parser.
// ---------------------------------------------------------------------

TEST(Parser, SimpleLine)
{
    InstrDb db;
    isa::parseInstrTable("FOO reg64:rw reg64:r wflags:CZSPO ext=AVX "
                         "attr=avx,zeroidiom\n",
                         db);
    ASSERT_EQ(db.size(), 1u);
    const auto *v = db.byName("FOO_R64_R64");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->mnemonic(), "FOO");
    EXPECT_EQ(v->extension(), Extension::Avx);
    EXPECT_TRUE(v->attrs().is_avx);
    EXPECT_TRUE(v->attrs().zero_idiom);
    ASSERT_EQ(v->numOperands(), 3u); // two registers + flags
    EXPECT_TRUE(v->operand(0).readWritten());
    EXPECT_EQ(v->flagsOperand(), 2);
    EXPECT_TRUE(v->operand(2).flags_written.cf);
    EXPECT_FALSE(v->operand(2).flags_read.any());
}

TEST(Parser, ImplicitFixedRegister)
{
    InstrDb db;
    isa::parseInstrTable("BAR reg64:rw *reg8=CL:r rwflags:C\n", db);
    const auto *v = db.byName("BAR_R64_R8i");
    ASSERT_NE(v, nullptr);
    EXPECT_TRUE(v->operand(1).implicit);
    EXPECT_EQ(v->operand(1).fixed_reg, 1); // CL = index 1
    EXPECT_EQ(v->explicitOperands(),
              (std::vector<int>{0})); // CL is implicit
}

TEST(Parser, MemoryAndImmediates)
{
    InstrDb db;
    isa::parseInstrTable("BAZ mem128:w xmm:r imm8\n", db);
    const auto *v = db.byName("BAZ_M128_X_I8");
    ASSERT_NE(v, nullptr);
    EXPECT_TRUE(v->writesMemory());
    EXPECT_FALSE(v->readsMemory());
    EXPECT_EQ(v->operand(2).kind, OpKind::Imm);
    EXPECT_EQ(v->memOperand(), 0);
}

TEST(Parser, CommentsAndBlankLines)
{
    InstrDb db;
    size_t n = isa::parseInstrTable("# comment only\n"
                                    "\n"
                                    "A reg64:rw reg64:r # trailing\n",
                                    db);
    EXPECT_EQ(n, 1u);
}

TEST(Parser, Errors)
{
    InstrDb db;
    EXPECT_THROW(isa::parseInstrTable("A reg64\n", db), FatalError);
    EXPECT_THROW(isa::parseInstrTable("A reg99:rw\n", db), FatalError);
    EXPECT_THROW(isa::parseInstrTable("A reg64:rw ext=NOPE\n", db),
                 FatalError);
    EXPECT_THROW(isa::parseInstrTable("A reg64:rw attr=nope\n", db),
                 FatalError);
    EXPECT_THROW(isa::parseInstrTable("A imm8:r\n", db), FatalError);
    // Duplicate variant names are rejected.
    InstrDb db2;
    EXPECT_THROW(isa::parseInstrTable("A reg64:rw\nA reg64:r\n", db2),
                 FatalError);
}

// ---------------------------------------------------------------------
// Bundled database.
// ---------------------------------------------------------------------

TEST(DefaultDb, SizeAndLookups)
{
    const auto &db = defaultDb();
    EXPECT_GT(db.size(), 550u);
    EXPECT_NE(db.byName("ADD_R64_R64"), nullptr);
    EXPECT_NE(db.byName("AESDEC_X_X"), nullptr);
    EXPECT_NE(db.byName("SHLD_R64_R64_I8"), nullptr);
    EXPECT_NE(db.byName("MOVQ2DQ_X_MM"), nullptr);
    EXPECT_NE(db.byName("PBLENDVB_X_X_Xi"), nullptr);
    EXPECT_EQ(db.byName("NO_SUCH_INSTR"), nullptr);
    EXPECT_GE(db.byMnemonic("ADD").size(), 16u);
}

TEST(DefaultDb, VariantCountsGrowAcrossGenerations)
{
    // Table 1 structure: counts grow with the generations; Kaby Lake
    // and Coffee Lake equal Skylake.
    std::map<uarch::UArch, int> counts;
    for (auto arch : uarch::allUArches()) {
        const auto &info = uarch::uarchInfo(arch);
        int n = 0;
        for (const auto *v : defaultDb().all())
            if (info.supports(*v))
                ++n;
        counts[arch] = n;
    }
    using uarch::UArch;
    EXPECT_LT(counts[UArch::Nehalem], counts[UArch::Westmere]);
    EXPECT_LT(counts[UArch::Westmere], counts[UArch::SandyBridge]);
    EXPECT_LT(counts[UArch::SandyBridge], counts[UArch::IvyBridge]);
    EXPECT_LT(counts[UArch::IvyBridge], counts[UArch::Haswell]);
    EXPECT_LT(counts[UArch::Haswell], counts[UArch::Broadwell]);
    EXPECT_LT(counts[UArch::Broadwell], counts[UArch::Skylake]);
    EXPECT_EQ(counts[UArch::Skylake], counts[UArch::KabyLake]);
    EXPECT_EQ(counts[UArch::KabyLake], counts[UArch::CoffeeLake]);
}

TEST(DefaultDb, PaperCaseStudyAttributesPresent)
{
    const auto &db = defaultDb();
    EXPECT_TRUE(db.byName("XOR_R64_R64")->attrs().zero_idiom);
    EXPECT_TRUE(db.byName("PCMPGTD_X_X")->attrs().dep_breaking_same_reg);
    EXPECT_TRUE(db.byName("MOV_R64_R64")->attrs().mov_elim_candidate);
    EXPECT_TRUE(db.byName("DIVPS_X_X")->attrs().uses_divider);
    EXPECT_TRUE(db.byName("VADDPS_Y_Y_Y")->attrs().is_avx);
    EXPECT_TRUE(db.byName("JMP_R64")->attrs().is_cf_reg);
    EXPECT_FALSE(db.byName("JZ_I8")->attrs().is_cf_reg);
}

TEST(DefaultDb, SourceAndDestQueries)
{
    const auto *adc = defaultDb().byName("ADC_R64_R64");
    ASSERT_NE(adc, nullptr);
    // Sources: op0 (rw), op1, flags (reads CF). Dests: op0, flags.
    EXPECT_EQ(adc->sourceOperands().size(), 3u);
    EXPECT_EQ(adc->destOperands().size(), 2u);

    const auto *mul = defaultDb().byName("MUL_R64i_R64i_R64");
    ASSERT_NE(mul, nullptr);
    EXPECT_EQ(mul->destOperands().size(), 3u); // RDX, RAX, flags
}

// ---------------------------------------------------------------------
// Assembler.
// ---------------------------------------------------------------------

TEST(Assembler, RoundTrip)
{
    for (const char *line :
         {"ADD RAX, RBX", "AESDEC XMM1, XMM2", "MOV RAX, [RBX]",
          "MOV [RBX], RAX", "SHLD RAX, RBX, 1", "ADD RAX, 42",
          "PSHUFD XMM1, XMM2, 0", "MOVQ2DQ XMM1, MM2"}) {
        auto inst = isa::assembleLine(defaultDb(), line);
        EXPECT_EQ(inst.toAsm(), line);
    }
}

TEST(Assembler, MemoryDisplacementSelectsTag)
{
    auto inst = isa::assembleLine(defaultDb(), "MOV RAX, [RBX+64]");
    int mem_idx = inst.variant->memOperand();
    EXPECT_EQ(inst.ops[mem_idx].mem.tag, 64);
    EXPECT_EQ(inst.toAsm(), "MOV RAX, [RBX+64]");
}

TEST(Assembler, PicksCorrectWidthVariant)
{
    auto i64 = isa::assembleLine(defaultDb(), "ADD RAX, RBX");
    EXPECT_EQ(i64.variant->name(), "ADD_R64_R64");
    auto i32 = isa::assembleLine(defaultDb(), "ADD EAX, EBX");
    EXPECT_EQ(i32.variant->name(), "ADD_R32_R32");
    auto i8 = isa::assembleLine(defaultDb(), "ADD AL, BL");
    EXPECT_EQ(i8.variant->name(), "ADD_R8_R8");
}

TEST(Assembler, Errors)
{
    EXPECT_THROW(isa::assembleLine(defaultDb(), "NOPE RAX"), FatalError);
    EXPECT_THROW(isa::assembleLine(defaultDb(), "ADD RAX"), FatalError);
    EXPECT_THROW(isa::assembleLine(defaultDb(), "ADD RAX, XMM1"),
                 FatalError);
}

TEST(Parser, DefaultTableReparsesIdentically)
{
    // parser round trip: the bundled DSL text rebuilds a database
    // equivalent to the bundled one, variant for variant.
    const auto &db = defaultDb();
    isa::InstrDb reparsed;
    size_t n = isa::parseInstrTable(isa::defaultInstrTableText(),
                                    reparsed);
    ASSERT_EQ(n, db.size());
    for (const auto *orig : db.all()) {
        const auto *copy = reparsed.byName(orig->name());
        ASSERT_NE(copy, nullptr) << orig->name();
        EXPECT_EQ(copy->mnemonic(), orig->mnemonic());
        EXPECT_EQ(copy->numOperands(), orig->numOperands());
        EXPECT_EQ(copy->extension(), orig->extension());
        EXPECT_EQ(copy->syntaxTemplate(), orig->syntaxTemplate());
    }
}

TEST(Assembler, KernelTextRoundTrip)
{
    // kernel text round trip: parse a listing, render it, re-parse
    // the rendering; both the text and the chosen variants are stable.
    const char *listing = "ADD RAX, RBX\n"
                          "XOR RCX, RCX\n"
                          "MOV RDX, [RSI+8]\n"
                          "PSHUFD XMM1, XMM2, 0\n"
                          "MOV [RDI], RAX\n"
                          "SHLD RAX, RBX, 1";
    isa::Kernel kernel = isa::assemble(defaultDb(), listing);
    std::string rendered = isa::kernelToAsm(kernel);
    EXPECT_EQ(rendered, std::string(listing) + "\n");

    isa::Kernel again = isa::assemble(defaultDb(), rendered);
    ASSERT_EQ(again.size(), kernel.size());
    for (size_t i = 0; i < kernel.size(); ++i) {
        EXPECT_EQ(again[i].variant, kernel[i].variant) << "line " << i;
        EXPECT_EQ(again[i].toAsm(), kernel[i].toAsm()) << "line " << i;
    }
    EXPECT_EQ(isa::kernelToAsm(again), rendered);
}

TEST(Assembler, MultiLineListing)
{
    auto kernel = asm_("ADD RAX, RBX\n# comment\nSUB RCX, RDX\n");
    ASSERT_EQ(kernel.size(), 2u);
    EXPECT_EQ(kernel[1].variant->mnemonic(), "SUB");
}

// ---------------------------------------------------------------------
// XML export / import round trip.
// ---------------------------------------------------------------------

TEST(XmlExport, RoundTripPreservesEverything)
{
    const auto &db = defaultDb();
    auto xml = isa::exportInstrDbXml(db);
    EXPECT_EQ(xml->childrenNamed("instruction").size(), db.size());

    auto reparsed = parseXml(xml->toString());
    auto imported = isa::importInstrDbXml(*reparsed);
    ASSERT_EQ(imported->size(), db.size());

    for (const auto *orig : db.all()) {
        const auto *copy = imported->byName(orig->name());
        ASSERT_NE(copy, nullptr) << orig->name();
        EXPECT_EQ(copy->mnemonic(), orig->mnemonic());
        EXPECT_EQ(copy->extension(), orig->extension());
        ASSERT_EQ(copy->numOperands(), orig->numOperands());
        for (size_t i = 0; i < orig->numOperands(); ++i) {
            const auto &a = orig->operand(i);
            const auto &b = copy->operand(i);
            EXPECT_EQ(a.kind, b.kind);
            EXPECT_EQ(a.reg_class, b.reg_class);
            EXPECT_EQ(a.read, b.read);
            EXPECT_EQ(a.written, b.written);
            EXPECT_EQ(a.implicit, b.implicit);
            EXPECT_EQ(a.fixed_reg, b.fixed_reg);
            EXPECT_EQ(a.flags_read, b.flags_read);
            EXPECT_EQ(a.flags_written, b.flags_written);
        }
        EXPECT_EQ(copy->attrs().zero_idiom, orig->attrs().zero_idiom);
        EXPECT_EQ(copy->attrs().uses_divider,
                  orig->attrs().uses_divider);
        EXPECT_EQ(copy->attrs().is_avx, orig->attrs().is_avx);
    }
}

} // namespace
} // namespace uops::test
