/**
 * @file
 * Test-side parsers for the observability surfaces: a strict
 * Prometheus text-exposition reader and a minimal JSON validity
 * checker for the structured log's JSON-lines output.
 *
 * The exposition parser is deliberately unforgiving — unknown line
 * shapes, malformed names, or non-numeric values fail the test via
 * ADD_FAILURE and are dropped — so the conformance tests prove the
 * renderer emits only what a real scraper would accept.
 */

#ifndef UOPS_TESTS_OBS_UTIL_H
#define UOPS_TESTS_OBS_UTIL_H

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace uops::test {

/** One parsed exposition, keyed by the full series id — metric name
 *  plus canonical label block, e.g.
 *  `uops_http_requests_total{endpoint="/predict"}`. */
struct Exposition
{
    std::map<std::string, double> series;
    std::map<std::string, std::string> help;   ///< by family name
    std::map<std::string, std::string> type;   ///< by family name
};

inline bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) ||
               c == '_' || c == ':';
    };
    if (!head(name[0]))
        return false;
    for (char c : name)
        if (!head(c) && !std::isdigit(static_cast<unsigned char>(c)))
            return false;
    return true;
}

/** Parse Prometheus text exposition format; malformed input records
 *  a gtest failure and skips the line. */
inline Exposition
parseExposition(const std::string &text)
{
    Exposition out;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;

        if (line.rfind("# HELP ", 0) == 0 ||
            line.rfind("# TYPE ", 0) == 0) {
            bool is_help = line[2] == 'H';
            std::string rest = line.substr(7);
            size_t space = rest.find(' ');
            if (space == std::string::npos) {
                ADD_FAILURE() << "bad comment line: " << line;
                continue;
            }
            std::string family = rest.substr(0, space);
            std::string payload = rest.substr(space + 1);
            if (!validMetricName(family)) {
                ADD_FAILURE() << "bad family name: " << line;
                continue;
            }
            if (is_help)
                out.help[family] = payload;
            else
                out.type[family] = payload;
            continue;
        }
        if (line[0] == '#')
            continue;   // other comments are legal and ignored

        // Sample line: name[{labels}] value
        size_t name_end = line.find_first_of("{ ");
        if (name_end == std::string::npos) {
            ADD_FAILURE() << "bad sample line: " << line;
            continue;
        }
        std::string name = line.substr(0, name_end);
        if (!validMetricName(name)) {
            ADD_FAILURE() << "bad metric name: " << line;
            continue;
        }
        std::string key = name;
        size_t cursor = name_end;
        if (line[cursor] == '{') {
            // Walk the label block honoring escapes inside quoted
            // values; the raw block (brace to brace) is the key.
            size_t scan = cursor + 1;
            bool in_quotes = false;
            while (scan < line.size()) {
                char c = line[scan];
                if (in_quotes && c == '\\') {
                    scan += 2;
                    continue;
                }
                if (c == '"')
                    in_quotes = !in_quotes;
                else if (!in_quotes && c == '}')
                    break;
                ++scan;
            }
            if (scan >= line.size()) {
                ADD_FAILURE() << "unterminated labels: " << line;
                continue;
            }
            key = line.substr(0, scan + 1);
            cursor = scan + 1;
        }
        if (cursor >= line.size() || line[cursor] != ' ') {
            ADD_FAILURE() << "missing value: " << line;
            continue;
        }
        std::string value_text = line.substr(cursor + 1);
        double value;
        if (value_text == "+Inf") {
            value = HUGE_VAL;
        } else {
            char *end = nullptr;
            value = std::strtod(value_text.c_str(), &end);
            if (end == nullptr || *end != '\0') {
                ADD_FAILURE()
                    << "bad sample value: " << line;
                continue;
            }
        }
        if (!out.series.emplace(key, value).second)
            ADD_FAILURE() << "duplicate series: " << key;
    }
    return out;
}

/**
 * Minimal JSON syntax check for one log line: balanced structure,
 * valid strings/escapes/numbers/literals. Accepts exactly one
 * top-level object. Not a full validator — enough to prove the
 * logger never emits a line a JSON parser would reject.
 */
inline bool
isValidJsonObject(const std::string &line)
{
    size_t pos = 0;
    auto skip_ws = [&] {
        while (pos < line.size() &&
               (line[pos] == ' ' || line[pos] == '\t'))
            ++pos;
    };
    std::function<bool()> value;   // forward declaration

    auto string_lit = [&]() -> bool {
        if (pos >= line.size() || line[pos] != '"')
            return false;
        ++pos;
        while (pos < line.size() && line[pos] != '"') {
            unsigned char c =
                static_cast<unsigned char>(line[pos]);
            if (c < 0x20)
                return false;   // raw control char breaks JSON
            if (line[pos] == '\\') {
                if (pos + 1 >= line.size())
                    return false;
                char esc = line[pos + 1];
                if (esc == 'u') {
                    if (pos + 5 >= line.size())
                        return false;
                    for (size_t i = 2; i <= 5; ++i)
                        if (!std::isxdigit(static_cast<unsigned char>(
                                line[pos + i])))
                            return false;
                    pos += 6;
                    continue;
                }
                if (std::string("\"\\/bfnrt").find(esc) ==
                    std::string::npos)
                    return false;
                pos += 2;
                continue;
            }
            ++pos;
        }
        if (pos >= line.size())
            return false;
        ++pos;   // closing quote
        return true;
    };

    auto number_lit = [&]() -> bool {
        size_t start = pos;
        if (pos < line.size() && line[pos] == '-')
            ++pos;
        while (pos < line.size() &&
               (std::isdigit(static_cast<unsigned char>(line[pos])) ||
                line[pos] == '.' || line[pos] == 'e' ||
                line[pos] == 'E' || line[pos] == '+' ||
                line[pos] == '-'))
            ++pos;
        return pos > start;
    };

    std::function<bool()> object = [&]() -> bool {
        if (pos >= line.size() || line[pos] != '{')
            return false;
        ++pos;
        skip_ws();
        if (pos < line.size() && line[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skip_ws();
            if (!string_lit())
                return false;
            skip_ws();
            if (pos >= line.size() || line[pos] != ':')
                return false;
            ++pos;
            skip_ws();
            if (!value())
                return false;
            skip_ws();
            if (pos < line.size() && line[pos] == ',') {
                ++pos;
                continue;
            }
            break;
        }
        if (pos >= line.size() || line[pos] != '}')
            return false;
        ++pos;
        return true;
    };

    value = [&]() -> bool {
        skip_ws();
        if (pos >= line.size())
            return false;
        char c = line[pos];
        if (c == '"')
            return string_lit();
        if (c == '{')
            return object();
        if (c == '[') {
            ++pos;
            skip_ws();
            if (pos < line.size() && line[pos] == ']') {
                ++pos;
                return true;
            }
            while (true) {
                if (!value())
                    return false;
                skip_ws();
                if (pos < line.size() && line[pos] == ',') {
                    ++pos;
                    continue;
                }
                break;
            }
            if (pos >= line.size() || line[pos] != ']')
                return false;
            ++pos;
            return true;
        }
        auto literal = [&](const char *word) {
            size_t n = std::string(word).size();
            if (line.compare(pos, n, word) != 0)
                return false;
            pos += n;
            return true;
        };
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number_lit();
    };

    skip_ws();
    if (!object())
        return false;
    skip_ws();
    return pos == line.size();
}

} // namespace uops::test

#endif // UOPS_TESTS_OBS_UTIL_H
