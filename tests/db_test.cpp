/**
 * @file
 * Tests for the instruction-performance database (src/db): the
 * golden round-trip property (characterize → XML export → XML ingest
 * → snapshot save → snapshot load must be bit-identical to the
 * in-memory ingest path), columnar queries, snapshot validation,
 * snapshot-identical answers under concurrent readers, and the
 * sharded catalog engine (golden shard round-trip over both the
 * stream and the zero-copy mmap loader, incremental-sweep splicing
 * bit-identical to a full sweep, lossless v2 → v3 migration, and
 * corrupt-store rejection).
 */

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/batch.h"
#include "db/catalog.h"
#include "isa/results_xml.h"
#include "support/hash.h"
#include "support/thread_pool.h"
#include "test_util.h"

namespace uops::test {
namespace {

/** Same diverse slice as batch_test: GPR ALU, zero idiom, SSE, AVX,
 *  divider, memory — small enough to characterize in milliseconds. */
bool
sliceFilter(const isa::InstrVariant &v)
{
    const std::string &m = v.mnemonic();
    return m == "ADD" || m == "XOR" || m == "PXOR" || m == "DIV" ||
           m == "MOVAPS" || m == "VPXOR" || m == "IMUL";
}

const std::vector<uarch::UArch> kArches = {uarch::UArch::Nehalem,
                                           uarch::UArch::Skylake};

/** One shared characterization run for the whole suite. */
const core::CharacterizationReport &
sliceReport()
{
    static const core::CharacterizationReport report = [] {
        core::BatchOptions options;
        options.num_threads = 2;
        options.characterizer.filter = sliceFilter;
        return core::runBatchSweep(defaultDb(), kArches, options);
    }();
    return report;
}

/** Database built through the in-memory ingest path. */
const db::InstructionDatabase &
sliceDb()
{
    // Built in place: InstructionDatabase is neither copyable nor
    // movable (its indexes hold views into the string pool).
    static const db::InstructionDatabase *database = [] {
        auto *built = new db::InstructionDatabase();
        built->ingest(sliceReport());
        return built;
    }();
    return *database;
}

// ---------------------------------------------------------------------
// The golden round-trip (acceptance criterion).
// ---------------------------------------------------------------------

TEST(DbRoundTrip, XmlIngestIsBitIdenticalToInMemoryIngest)
{
    // characterize → XML export → XML ingest ...
    std::string xml_text = sliceReport().toXmlString();
    isa::ResultsDoc doc = isa::parseResultsXml(xml_text);
    db::InstructionDatabase from_xml;
    from_xml.ingestResults(doc, &defaultDb());

    // ... must match the in-memory ingest bit for bit.
    EXPECT_EQ(db::snapshotBytes(sliceDb()),
              db::snapshotBytes(from_xml));
}

TEST(DbRoundTrip, SnapshotSaveLoadIsBitExact)
{
    std::string bytes = db::snapshotBytes(sliceDb());
    auto loaded = db::loadSnapshotBytes(bytes);
    // save(load(save(db))) == save(db)
    EXPECT_EQ(db::snapshotBytes(*loaded), bytes);
    EXPECT_EQ(loaded->numRecords(), sliceDb().numRecords());
}

TEST(DbRoundTrip, FullPipelineGolden)
{
    // The complete chain of the acceptance criterion in one line per
    // stage: characterize → XML → ingest → save → load, then compare
    // query answers (not just bytes) against the in-memory path.
    auto doc = isa::parseResultsXml(sliceReport().toXmlString());
    db::InstructionDatabase from_xml;
    from_xml.ingestResults(doc, &defaultDb());
    auto loaded = db::loadSnapshotBytes(db::snapshotBytes(from_xml));

    const db::InstructionDatabase &direct = sliceDb();
    ASSERT_EQ(loaded->numRecords(), direct.numRecords());
    for (uint32_t row = 0;
         row < static_cast<uint32_t>(direct.numRecords()); ++row) {
        db::RecordView a = direct.record(row);
        db::RecordView b = loaded->record(row);
        EXPECT_EQ(a.name(), b.name());
        EXPECT_EQ(a.arch(), b.arch());
        EXPECT_EQ(a.extension(), b.extension());
        EXPECT_TRUE(a.portUsage() == b.portUsage());
        EXPECT_EQ(a.uopCount(), b.uopCount());
        EXPECT_EQ(a.maxLatency(), b.maxLatency());
        // Bit-identical doubles, not approximately equal.
        EXPECT_EQ(a.tpMeasured(), b.tpMeasured());
        EXPECT_EQ(a.tpWithBreakers(), b.tpWithBreakers());
        EXPECT_EQ(a.tpSlow(), b.tpSlow());
        EXPECT_EQ(a.tpFromPorts(), b.tpFromPorts());
        EXPECT_EQ(a.sameRegCycles(), b.sameRegCycles());
        EXPECT_EQ(a.storeRoundTrip(), b.storeRoundTrip());
        auto lats_a = a.latencies();
        auto lats_b = b.latencies();
        ASSERT_EQ(lats_a.size(), lats_b.size());
        for (size_t i = 0; i < lats_a.size(); ++i) {
            EXPECT_EQ(lats_a[i].src_op, lats_b[i].src_op);
            EXPECT_EQ(lats_a[i].dst_op, lats_b[i].dst_op);
            EXPECT_EQ(lats_a[i].cycles, lats_b[i].cycles);
            EXPECT_EQ(lats_a[i].upper_bound, lats_b[i].upper_bound);
            EXPECT_EQ(lats_a[i].slow_cycles, lats_b[i].slow_cycles);
        }
    }
}

TEST(DbRoundTrip, StreamingSweepIngestIsBitIdenticalToAllPaths)
{
    // Direct sweep -> DB: records stream into the database while the
    // sweep runs, with no XML tree and (keep_results = false) no
    // retained per-variant results. The snapshot must be
    // byte-identical to both the in-memory ingest of a full report
    // and the XML-materializing path — with v2's integer Cycles
    // columns that is plain memcmp equality, no text canonicalization
    // anywhere.
    core::BatchOptions options;
    options.num_threads = 4;
    options.characterizer.filter = sliceFilter;
    db::InstructionDatabase streamed;
    db::SweepIngestor ingestor(streamed);
    options.sink = &ingestor;
    options.keep_results = false;
    auto report = core::runBatchSweep(defaultDb(), kArches, options);

    EXPECT_EQ(ingestor.numIngested(), report.numSucceeded());
    // keep_results=false: outcome status is retained, results are not.
    for (const auto &ureport : report.uarches)
        for (const auto &outcome : ureport.outcomes) {
            EXPECT_TRUE(outcome.ok) << outcome.error;
            EXPECT_EQ(outcome.result.variant, nullptr);
        }
    // The cleared report stays safe to repackage: toSet() skips the
    // released slots instead of dereferencing their null variants.
    EXPECT_TRUE(report.uarches[0].toSet().instrs.empty());
    EXPECT_NE(report.toXmlString().find("<uopsBatch"),
              std::string::npos);

    std::string streamed_bytes = db::snapshotBytes(streamed);
    EXPECT_EQ(streamed_bytes, db::snapshotBytes(sliceDb()));

    db::InstructionDatabase from_xml;
    from_xml.ingestResults(
        isa::parseResultsXml(sliceReport().toXmlString()),
        &defaultDb());
    EXPECT_EQ(streamed_bytes, db::snapshotBytes(from_xml));
}

TEST(DbRoundTrip, CyclesRoundingIsIdempotent)
{
    // The canonical representation absorbs re-rounding: converting a
    // Cycles back to double and rounding again is the identity.
    for (double x : {0.25, 0.33333, 1.0, 1.332, 3.99, 42.0, 88.5}) {
        Cycles canon = Cycles::round(x);
        EXPECT_EQ(canon, Cycles::round(canon.toDouble()));
    }
}

// ---------------------------------------------------------------------
// Results-XML parsing.
// ---------------------------------------------------------------------

TEST(ResultsXml, ParsesSingleUArchRoot)
{
    auto set = sliceReport().uarches[1].toSet();
    std::string xml = core::exportResultsXml(set)->toString();
    isa::ResultsDoc doc = isa::parseResultsXml(xml);
    ASSERT_EQ(doc.uarches.size(), 1u);
    EXPECT_EQ(doc.uarches[0].architecture, "SKL");
    EXPECT_EQ(doc.uarches[0].instrs.size(), set.instrs.size());
}

TEST(ResultsXml, CapturesErrorsFromBatchReports)
{
    core::BatchOptions options;
    options.num_threads = 2;
    options.characterizer.filter = sliceFilter;
    options.on_variant_done = [](uarch::UArch,
                                 const isa::InstrVariant &v, bool) {
        if (v.mnemonic() == "PXOR")
            throw std::runtime_error("injected");
    };
    auto report = core::runBatchSweep(defaultDb(), kArches, options);
    isa::ResultsDoc doc = isa::parseResultsXml(report.toXmlString());
    size_t errors = 0;
    for (const auto &ua : doc.uarches)
        errors += ua.errors.size();
    EXPECT_EQ(errors, report.numFailed());
    EXPECT_GT(errors, 0u);
}

TEST(ResultsXml, RejectsForeignRoots)
{
    EXPECT_THROW(isa::parseResultsXml("<wrong/>"), FatalError);
}

TEST(ResultsXml, PortUsageStringRoundTrips)
{
    // Canonical strings are sorted by port mask (PortUsage::add),
    // exactly as the XML export renders them.
    for (const char *text : {"-", "1*p0", "1*p23+3*p015",
                             "1*p23+1*p4+2*p0156"}) {
        uarch::PortUsage usage = uarch::PortUsage::fromString(text);
        EXPECT_EQ(usage.toString(), text);
    }
    EXPECT_THROW(uarch::PortUsage::fromString("nonsense"), FatalError);
    EXPECT_THROW(uarch::PortUsage::fromString("x*p0"), FatalError);
}

// ---------------------------------------------------------------------
// Queries.
// ---------------------------------------------------------------------

TEST(DbQuery, PointLookup)
{
    const db::InstructionDatabase &database = sliceDb();
    auto row = database.find(uarch::UArch::Skylake, "ADD_R64_R64");
    ASSERT_TRUE(row.has_value());
    db::RecordView rec = database.record(*row);
    EXPECT_EQ(rec.name(), "ADD_R64_R64");
    EXPECT_EQ(rec.mnemonic(), "ADD");
    EXPECT_EQ(rec.arch(), uarch::UArch::Skylake);
    EXPECT_GT(rec.uopCount(), 0);
    EXPECT_GT(rec.tpMeasured().hundredths(), 0);

    EXPECT_FALSE(
        database.find(uarch::UArch::Skylake, "NO_SUCH_VARIANT"));
    // Present on both uarches.
    EXPECT_EQ(database.findByName("ADD_R64_R64").size(), 2u);
}

TEST(DbQuery, MnemonicAndExtensionIndexes)
{
    const db::InstructionDatabase &database = sliceDb();
    db::Query query;
    query.mnemonic = "ADD";
    auto rows = database.search(query);
    ASSERT_FALSE(rows.empty());
    for (uint32_t row : rows)
        EXPECT_EQ(database.record(row).mnemonic(), "ADD");

    db::Query by_ext;
    by_ext.extension = "AVX";
    by_ext.arch = uarch::UArch::Skylake;
    auto avx_rows = database.search(by_ext);
    ASSERT_FALSE(avx_rows.empty());
    for (uint32_t row : avx_rows)
        EXPECT_EQ(database.record(row).extension(), "AVX");

    // AVX doesn't exist on Nehalem.
    by_ext.arch = uarch::UArch::Nehalem;
    EXPECT_TRUE(database.search(by_ext).empty());
}

TEST(DbQuery, PortMaskSupersetScan)
{
    const db::InstructionDatabase &database = sliceDb();
    db::Query query;
    query.arch = uarch::UArch::Skylake;
    query.uses_ports = uarch::portMask({0, 5});
    auto rows = database.search(query);
    ASSERT_FALSE(rows.empty());
    for (uint32_t row : rows) {
        uarch::PortMask mask = database.record(row).portUnion();
        EXPECT_EQ(mask & query.uses_ports, query.uses_ports)
            << std::string(database.record(row).name());
    }
    // Sanity: the filter excludes something (e.g. pure p23 loads).
    db::Query all;
    all.arch = uarch::UArch::Skylake;
    EXPECT_LT(rows.size(), database.search(all).size());
}

TEST(DbQuery, ThroughputAndLatencyRanges)
{
    const db::InstructionDatabase &database = sliceDb();
    db::Query query;
    query.tp_min = db::tpBoundMin(0.9);
    query.tp_max = db::tpBoundMax(30.0);
    auto rows = database.search(query);
    ASSERT_FALSE(rows.empty());
    for (uint32_t row : rows) {
        double tp = database.record(row).tpMeasured().toDouble();
        EXPECT_GE(tp, 0.9);
        EXPECT_LE(tp, 30.0);
    }

    db::Query lat_query;
    lat_query.lat_min = 10;   // dividers
    auto lat_rows = database.search(lat_query);
    ASSERT_FALSE(lat_rows.empty());
    for (uint32_t row : lat_rows)
        EXPECT_GE(database.record(row).maxLatency(), 10);
}

TEST(DbQuery, LimitAndCombinedPredicates)
{
    const db::InstructionDatabase &database = sliceDb();
    db::Query query;
    query.arch = uarch::UArch::Skylake;
    query.limit = 3;
    EXPECT_EQ(database.search(query).size(), 3u);

    db::Query combined;
    combined.mnemonic = "DIV";
    combined.arch = uarch::UArch::Skylake;
    combined.lat_min = 2;
    auto rows = database.search(combined);
    for (uint32_t row : rows) {
        EXPECT_EQ(database.record(row).mnemonic(), "DIV");
        EXPECT_GE(database.record(row).maxLatency(), 2);
    }
}

TEST(DbQuery, CrossUArchDiff)
{
    const db::InstructionDatabase &database = sliceDb();
    db::DiffResult diff =
        database.diff(uarch::UArch::Nehalem, uarch::UArch::Skylake);
    EXPECT_GT(diff.common, 0u);
    // AVX variants exist only on Skylake.
    EXPECT_FALSE(diff.only_b.empty());
    EXPECT_TRUE(diff.only_a.empty());
    for (const db::DiffEntry &entry : diff.changed) {
        EXPECT_TRUE(entry.tp_differs || entry.ports_differ ||
                    entry.latency_differs);
        EXPECT_EQ(database.record(entry.row_a).name(),
                  database.record(entry.row_b).name());
    }
    // Diff against self reports nothing.
    db::DiffResult self =
        database.diff(uarch::UArch::Skylake, uarch::UArch::Skylake);
    EXPECT_TRUE(self.changed.empty());
    EXPECT_TRUE(self.only_a.empty());
    EXPECT_TRUE(self.only_b.empty());
}

TEST(DbQuery, UArchEnumeration)
{
    const db::InstructionDatabase &database = sliceDb();
    auto arches = database.uarches();
    ASSERT_EQ(arches.size(), 2u);
    EXPECT_EQ(arches[0], uarch::UArch::Nehalem);
    EXPECT_EQ(arches[1], uarch::UArch::Skylake);
    EXPECT_EQ(database.numRecords(uarch::UArch::Nehalem) +
                  database.numRecords(uarch::UArch::Skylake),
              database.numRecords());
}

TEST(DbQuery, ToCharacterizationSetResolvesVariants)
{
    const db::InstructionDatabase &database = sliceDb();
    auto set = database.toCharacterizationSet(uarch::UArch::Skylake,
                                              defaultDb());
    EXPECT_EQ(set.instrs.size(),
              database.numRecords(uarch::UArch::Skylake));
    const auto *c = set.find("ADD_R64_R64");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->variant, defaultDb().byName("ADD_R64_R64"));
    EXPECT_FALSE(c->latency.pairs.empty());
    EXPECT_GT(c->ports.usage.totalUops(), 0);
}

// ---------------------------------------------------------------------
// Snapshot validation.
// ---------------------------------------------------------------------

TEST(DbSnapshot, RejectsCorruptInput)
{
    std::string bytes = db::snapshotBytes(sliceDb());

    EXPECT_THROW(db::loadSnapshotBytes(""), FatalError);
    EXPECT_THROW(
        db::loadSnapshotBytes(bytes.substr(0, bytes.size() / 2)),
        FatalError);

    std::string bad_magic = bytes;
    bad_magic[0] = 'X';
    EXPECT_THROW(db::loadSnapshotBytes(bad_magic), FatalError);

    std::string bad_version = bytes;
    bad_version[8] = char(0x7f);
    EXPECT_THROW(db::loadSnapshotBytes(bad_version), FatalError);

    // A corrupt array-length prefix (first array starts after the
    // 24-byte header) must be a FatalError before any allocation:
    // 16M declared elements exceed the remaining file bytes but pass
    // the implausible-size cap, so this exercises the stream-length
    // bound specifically.
    std::string length_bomb = bytes;
    length_bomb[24] = char(0xff);
    length_bomb[25] = char(0xff);
    length_bomb[26] = char(0xff);
    for (size_t i = 3; i < 8; ++i)
        length_bomb[24 + i] = 0;
    EXPECT_THROW(db::loadSnapshotBytes(length_bomb), FatalError);
}

TEST(DbSnapshot, IngestAfterLoadStaysBitIdentical)
{
    // Loading a snapshot re-interns the string pool, so ingesting
    // more uarches on top of a loaded database must produce the same
    // bytes as ingesting everything in memory.
    db::InstructionDatabase direct;
    direct.ingest(sliceReport().uarches[0].toSet());
    direct.ingest(sliceReport().uarches[1].toSet());

    db::InstructionDatabase first;
    first.ingest(sliceReport().uarches[0].toSet());
    auto resumed = db::loadSnapshotBytes(db::snapshotBytes(first));
    resumed->ingest(sliceReport().uarches[1].toSet());

    EXPECT_EQ(db::snapshotBytes(direct), db::snapshotBytes(*resumed));
}

TEST(DbSnapshot, DuplicateIngestIsRejected)
{
    db::InstructionDatabase database;
    database.ingest(sliceReport().uarches[0].toSet());
    EXPECT_THROW(database.ingest(sliceReport().uarches[0].toSet()),
                 FatalError);
}

// ---------------------------------------------------------------------
// Concurrent readers (satellite: snapshot-identical responses).
// ---------------------------------------------------------------------

TEST(DbConcurrency, ParallelReadersSeeIdenticalAnswers)
{
    const db::InstructionDatabase &database = sliceDb();

    // Baseline answers, computed single-threaded.
    db::Query by_ports;
    by_ports.uses_ports = uarch::portMask({0});
    const auto baseline_ports = database.search(by_ports);
    db::Query by_mnemonic;
    by_mnemonic.mnemonic = "ADD";
    const auto baseline_add = database.search(by_mnemonic);
    const auto baseline_diff =
        database.diff(uarch::UArch::Nehalem, uarch::UArch::Skylake);
    const auto baseline_row =
        database.find(uarch::UArch::Skylake, "ADD_R64_R64");
    ASSERT_TRUE(baseline_row.has_value());
    const Cycles baseline_tp =
        database.record(*baseline_row).tpMeasured();

    std::atomic<size_t> mismatches{0};
    ThreadPool pool(8);
    pool.parallelFor(400, [&](size_t i, size_t) {
        switch (i % 4) {
          case 0: {
            if (database.search(by_ports) != baseline_ports)
                ++mismatches;
            break;
          }
          case 1: {
            if (database.search(by_mnemonic) != baseline_add)
                ++mismatches;
            break;
          }
          case 2: {
            auto diff = database.diff(uarch::UArch::Nehalem,
                                      uarch::UArch::Skylake);
            if (diff.common != baseline_diff.common ||
                diff.changed.size() != baseline_diff.changed.size())
                ++mismatches;
            break;
          }
          case 3: {
            auto row =
                database.find(uarch::UArch::Skylake, "ADD_R64_R64");
            if (!row ||
                database.record(*row).tpMeasured() != baseline_tp)
                ++mismatches;
            break;
          }
        }
    });
    EXPECT_EQ(mismatches.load(), 0u);
}

// ---------------------------------------------------------------------
// The sharded catalog engine.
// ---------------------------------------------------------------------

/** Fresh, empty temp directory for one test. */
std::string
freshDir(const std::string &name)
{
    auto path = std::filesystem::temp_directory_path() /
                ("uops_db_test_" + name);
    std::filesystem::remove_all(path);
    return path.string();
}

/** Catalog built by the sharded streaming sweep (same slice). */
std::shared_ptr<const db::DatabaseCatalog>
sweepCatalog()
{
    static const auto catalog = [] {
        core::BatchOptions options;
        options.num_threads = 2;
        options.characterizer.filter = sliceFilter;
        options.keep_results = false;
        return db::runCatalogSweep(defaultDb(), kArches, options,
                                   nullptr);
    }();
    return catalog;
}

TEST(Catalog, ShardedSweepMatchesMonolithSplit)
{
    // The two construction paths — streaming per-uarch sweep ingest
    // and splitting a monolithic database — must produce the same
    // shard bytes, or migration and incremental sweeps could not be
    // compared by hash.
    auto split = db::DatabaseCatalog::fromMonolith(sliceDb(), 1);
    ASSERT_EQ(split->shards().size(),
              sweepCatalog()->shards().size());
    for (size_t i = 0; i < split->shards().size(); ++i) {
        const db::ShardEntry &a = split->shards()[i];
        const db::ShardEntry &b = sweepCatalog()->shards()[i];
        EXPECT_EQ(a.arch, b.arch);
        EXPECT_EQ(db::shardBytes(*a.db, a.arch),
                  db::shardBytes(*b.db, b.arch));
        EXPECT_EQ(a.hash, b.hash);
        EXPECT_EQ(a.file, b.file);
    }
}

TEST(Catalog, GoldenShardRoundTripStreamAndMmap)
{
    const std::string dir = freshDir("roundtrip");
    db::saveCatalogDir(*sweepCatalog(), dir);

    for (db::LoadMode mode :
         {db::LoadMode::Stream, db::LoadMode::Mmap}) {
        auto loaded = db::loadCatalogDir(dir, mode);
        EXPECT_EQ(loaded->generation(),
                  sweepCatalog()->generation());
        ASSERT_EQ(loaded->shards().size(),
                  sweepCatalog()->shards().size());
        for (size_t i = 0; i < loaded->shards().size(); ++i) {
            const db::ShardEntry &got = loaded->shards()[i];
            const db::ShardEntry &want =
                sweepCatalog()->shards()[i];
            EXPECT_EQ(got.arch, want.arch);
            EXPECT_EQ(got.records, want.records);
            EXPECT_EQ(got.hash, want.hash);
            // Loaded shards re-serialize to the exact bytes saved —
            // through the copying loader and the zero-copy one.
            EXPECT_EQ(db::shardBytes(*got.db, got.arch),
                      db::shardBytes(*want.db, want.arch));
        }

        // Query answers are loader-independent.
        auto view =
            loaded->find(uarch::UArch::Skylake, "ADD_R64_R64");
        ASSERT_TRUE(view.has_value());
        auto want_view = sweepCatalog()->find(uarch::UArch::Skylake,
                                              "ADD_R64_R64");
        EXPECT_EQ(view->tpMeasured(), want_view->tpMeasured());
        db::Query query;
        query.uses_ports = uarch::portMask({0});
        EXPECT_EQ(loaded->search(query).size(),
                  sweepCatalog()->search(query).size());
    }
}

TEST(Catalog, IncrementalSpliceEqualsFullSweep)
{
    // Acceptance criterion: re-sweeping one uarch into an existing
    // catalog must reproduce the full fresh sweep bit for bit,
    // per-shard hash-checked.
    core::BatchOptions options;
    options.num_threads = 2;
    options.characterizer.filter = sliceFilter;

    auto base = db::runCatalogSweep(
        defaultDb(), {uarch::UArch::Nehalem}, options, nullptr);
    EXPECT_EQ(base->generation(), 1u);

    auto spliced = db::runCatalogSweep(defaultDb(),
                                       {uarch::UArch::Skylake},
                                       options, base.get());
    EXPECT_EQ(spliced->generation(), 2u);

    ASSERT_EQ(spliced->shards().size(),
              sweepCatalog()->shards().size());
    for (size_t i = 0; i < spliced->shards().size(); ++i) {
        const db::ShardEntry &got = spliced->shards()[i];
        const db::ShardEntry &want = sweepCatalog()->shards()[i];
        EXPECT_EQ(got.arch, want.arch);
        EXPECT_EQ(got.hash, want.hash)
            << uarch::uarchShortName(got.arch);
        EXPECT_EQ(db::shardBytes(*got.db, got.arch),
                  db::shardBytes(*want.db, want.arch));
    }
    // The untouched shard is shared with the base, not copied.
    EXPECT_EQ(spliced->shard(uarch::UArch::Nehalem),
              base->shard(uarch::UArch::Nehalem));

    // On disk: saving base then splicing writes only the fresh
    // shard; the directory ends up with the same shard files as a
    // full-sweep save.
    const std::string dir_full = freshDir("splice_full");
    const std::string dir_incr = freshDir("splice_incr");
    db::saveCatalogDir(*sweepCatalog(), dir_full);
    db::saveCatalogDir(*base, dir_incr);
    db::saveCatalogDir(*spliced, dir_incr);
    for (const db::ShardEntry &entry : sweepCatalog()->shards()) {
        std::ifstream a(dir_full + "/" + entry.file,
                        std::ios::binary);
        std::ifstream b(dir_incr + "/" + entry.file,
                        std::ios::binary);
        ASSERT_TRUE(a && b) << entry.file;
        std::stringstream bytes_a, bytes_b;
        bytes_a << a.rdbuf();
        bytes_b << b.rdbuf();
        EXPECT_EQ(bytes_a.str(), bytes_b.str()) << entry.file;
        EXPECT_EQ(fnv1a64(bytes_a.str()), entry.hash);
    }
    EXPECT_EQ(db::loadCatalogDir(dir_incr)->generation(), 2u);
}

TEST(Catalog, MigrateV2SnapshotIsLossless)
{
    // A legacy monolith converts to a shard set whose bytes equal a
    // fresh sharded sweep of the same results (v1 stays refused by
    // the loader underneath).
    const std::string snap =
        freshDir("migrate_src") + "_v2.snap";
    db::saveSnapshotFile(sliceDb(), snap);

    const std::string dir = freshDir("migrate_out");
    db::migrateSnapshot(snap, dir);
    auto migrated = db::loadCatalogDir(dir);
    EXPECT_EQ(migrated->generation(), 1u);
    ASSERT_EQ(migrated->shards().size(),
              sweepCatalog()->shards().size());
    for (size_t i = 0; i < migrated->shards().size(); ++i)
        EXPECT_EQ(migrated->shards()[i].hash,
                  sweepCatalog()->shards()[i].hash);

    // openCatalog serves the legacy file directly too (generation 0
    // marks "not from a sharded store").
    auto legacy = db::openCatalog(snap);
    EXPECT_EQ(legacy->generation(), 0u);
    EXPECT_EQ(legacy->numRecords(), sliceDb().numRecords());
}

TEST(Catalog, QueriesMatchMonolith)
{
    const db::DatabaseCatalog &catalog = *sweepCatalog();
    const db::InstructionDatabase &mono = sliceDb();

    EXPECT_EQ(catalog.numRecords(), mono.numRecords());
    EXPECT_EQ(catalog.uarches(), mono.uarches());

    // Search answers in the same order as the arch-major monolith.
    db::Query query;
    query.uses_ports = uarch::portMask({0, 5});
    auto catalog_rows = catalog.search(query);
    auto mono_rows = mono.search(query);
    ASSERT_EQ(catalog_rows.size(), mono_rows.size());
    for (size_t i = 0; i < mono_rows.size(); ++i) {
        db::RecordView want = mono.record(mono_rows[i]);
        EXPECT_EQ(catalog_rows[i].name(), want.name());
        EXPECT_EQ(catalog_rows[i].arch(), want.arch());
        EXPECT_EQ(catalog_rows[i].tpMeasured(), want.tpMeasured());
    }

    // Limits span shards exactly like a monolith row-order scan.
    db::Query limited;
    limited.limit = static_cast<size_t>(
        mono.numRecords(uarch::UArch::Nehalem) + 2);
    auto spanning = catalog.search(limited);
    ASSERT_EQ(spanning.size(), limited.limit);
    EXPECT_EQ(spanning.front().arch(), uarch::UArch::Nehalem);
    EXPECT_EQ(spanning.back().arch(), uarch::UArch::Skylake);

    EXPECT_EQ(catalog.findByName("ADD_R64_R64").size(),
              mono.findByName("ADD_R64_R64").size());

    // Diff agrees with the monolith in content and order.
    auto catalog_diff =
        catalog.diff(uarch::UArch::Nehalem, uarch::UArch::Skylake);
    auto mono_diff =
        mono.diff(uarch::UArch::Nehalem, uarch::UArch::Skylake);
    EXPECT_EQ(catalog_diff.common, mono_diff.common);
    EXPECT_EQ(catalog_diff.only_a, mono_diff.only_a);
    EXPECT_EQ(catalog_diff.only_b, mono_diff.only_b);
    ASSERT_EQ(catalog_diff.changed.size(),
              mono_diff.changed.size());
    for (size_t i = 0; i < mono_diff.changed.size(); ++i) {
        EXPECT_EQ(catalog_diff.changed[i].a.name(),
                  mono.record(mono_diff.changed[i].row_a).name());
        EXPECT_EQ(catalog_diff.changed[i].tp_differs,
                  mono_diff.changed[i].tp_differs);
        EXPECT_EQ(catalog_diff.changed[i].ports_differ,
                  mono_diff.changed[i].ports_differ);
        EXPECT_EQ(catalog_diff.changed[i].latency_differs,
                  mono_diff.changed[i].latency_differs);
    }
}

TEST(Catalog, MmapLoadIsCopyOnWriteForLaterIngest)
{
    // Ingesting on top of a zero-copy-loaded shard must produce the
    // same bytes as the all-in-memory build: the first mutation
    // copies the borrowed columns out of the mapping.
    const std::string dir = freshDir("mmap_cow");
    db::saveCatalogDir(*sweepCatalog(), dir);
    const db::ShardEntry &nhm = sweepCatalog()->shards().front();
    ASSERT_EQ(nhm.arch, uarch::UArch::Nehalem);

    auto mapped = db::loadShardMapped(mapFile(dir + "/" + nhm.file),
                                      uarch::UArch::Nehalem);
    mapped->ingest(sliceReport().uarches[1].toSet());

    db::InstructionDatabase direct;
    direct.ingest(sliceReport().uarches[0].toSet());
    direct.ingest(sliceReport().uarches[1].toSet());
    EXPECT_EQ(db::snapshotBytes(*mapped),
              db::snapshotBytes(direct));
}

TEST(Catalog, CorruptStoreIsRefused)
{
    const std::string dir = freshDir("corrupt");
    db::saveCatalogDir(*sweepCatalog(), dir);
    EXPECT_EQ(db::readCatalogGeneration(dir),
              std::optional<uint64_t>(1));
    EXPECT_EQ(db::readCatalogGeneration(dir + "_missing"),
              std::nullopt);

    // Flip one byte of a shard: the manifest hash check refuses it
    // on both load paths.
    const std::string victim =
        dir + "/" + sweepCatalog()->shards().back().file;
    {
        std::fstream file(victim, std::ios::binary | std::ios::in |
                                      std::ios::out);
        ASSERT_TRUE(file);
        file.seekg(100);
        char byte = 0;
        file.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x5a);
        file.seekp(100);
        file.write(&byte, 1);
    }
    EXPECT_THROW(db::loadCatalogDir(dir, db::LoadMode::Stream),
                 FatalError);
    EXPECT_THROW(db::loadCatalogDir(dir, db::LoadMode::Mmap),
                 FatalError);

    // A torn manifest is rejected too.
    {
        std::ofstream manifest(dir + "/manifest",
                               std::ios::binary | std::ios::trunc);
        manifest << "UOPSMF";
    }
    EXPECT_THROW(db::loadCatalogDir(dir), FatalError);
}

TEST(Catalog, EmptyShardRoundTrips)
{
    // A uarch swept with zero successful variants still publishes an
    // (empty) shard — the mechanism for deliberately erasing one.
    core::BatchOptions options;
    options.characterizer.filter = [](const isa::InstrVariant &) {
        return false;
    };
    auto catalog = db::runCatalogSweep(
        defaultDb(), {uarch::UArch::Nehalem}, options, nullptr);
    ASSERT_EQ(catalog->shards().size(), 1u);
    EXPECT_EQ(catalog->numRecords(), 0u);
    EXPECT_TRUE(catalog->uarches().empty());

    const std::string dir = freshDir("empty");
    db::saveCatalogDir(*catalog, dir);
    auto loaded = db::loadCatalogDir(dir);
    EXPECT_EQ(loaded->numRecords(uarch::UArch::Nehalem), 0u);
    EXPECT_EQ(loaded->shards().front().hash,
              catalog->shards().front().hash);
}

} // namespace
} // namespace uops::test
