/**
 * @file
 * Tests for the work-stealing thread pool and the parallel batch
 * characterization engine: determinism under threading (the parallel
 * sweep must be byte-identical to a sequential one) and per-variant
 * failure accounting.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>

#include <gtest/gtest.h>

#include "core/batch.h"
#include "support/thread_pool.h"
#include "test_util.h"

namespace uops::test {
namespace {

// ---------------------------------------------------------------------
// Thread pool.
// ---------------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.numWorkers(), 4u);

    const size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](size_t i, size_t worker) {
        ASSERT_LT(worker, pool.numWorkers());
        ++hits[i];
    });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, StealingSpreadsUnevenWork)
{
    // One task parks its worker until a *different* worker has run
    // something, forcing the remaining tasks to be stolen. The park
    // (rather than mere busy work) makes the multi-worker property
    // deterministic: on an otherwise-idle single CPU a worker can
    // drain every queue before its peers are even scheduled.
    ThreadPool pool(4);
    std::mutex mutex;
    std::condition_variable cv;
    std::set<size_t> seen_workers;
    pool.parallelFor(64, [&](size_t i, size_t worker) {
        std::unique_lock<std::mutex> lock(mutex);
        seen_workers.insert(worker);
        cv.notify_all();
        if (i == 0)
            cv.wait_for(lock, std::chrono::seconds(10), [&] {
                return seen_workers.size() > 1;
            });
    });
    EXPECT_GT(seen_workers.size(), 1u);
}

TEST(ThreadPool, SubmitFromWithinTask)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&](size_t) {
            ++count;
            pool.submit([&](size_t) { ++count; });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, TaskExceptionIsRethrownFromWait)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&, i](size_t) {
            ++ran;
            if (i == 3)
                throw std::runtime_error("task 3 failed");
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The failure does not cancel the remaining tasks.
    EXPECT_EQ(ran.load(), 8);
    // The error is delivered once; a later wait() is clean.
    pool.submit([&](size_t) { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 9);
}

TEST(ThreadPool, MultipleFaultsRethrowEarliestSubmittedDeterministically)
{
    // When several tasks fault in one wave, wait() must rethrow the
    // exception of the earliest-*submitted* task — not whichever
    // worker happened to report first — and count the intentionally
    // swallowed remainder. Repeat to shake out scheduling orders.
    for (int round = 0; round < 20; ++round) {
        ThreadPool pool(4);
        for (int i = 0; i < 16; ++i) {
            pool.submit([i](size_t) {
                if (i % 2 == 1)
                    throw std::runtime_error("task " +
                                             std::to_string(i));
            });
        }
        try {
            pool.wait();
            FAIL() << "wait() must rethrow";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "task 1");
        }
        // 8 tasks threw; one was rethrown, 7 swallowed by design.
        EXPECT_EQ(pool.droppedErrors(), 7u);
        // The error state is consumed: a later wave is clean.
        std::atomic<int> ran{0};
        pool.submit([&](size_t) { ++ran; });
        pool.wait();
        EXPECT_EQ(ran.load(), 1);
    }
}

TEST(ThreadPool, SingleWorkerRunsAllTasksWithoutRaces)
{
    ThreadPool pool(1);
    std::vector<size_t> order;
    pool.parallelFor(16, [&](size_t i, size_t worker) {
        EXPECT_EQ(worker, 0u);
        order.push_back(i);  // no lock needed: one worker
    });
    ASSERT_EQ(order.size(), 16u);
    std::set<size_t> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), 16u);
}

// ---------------------------------------------------------------------
// Batch characterization.
// ---------------------------------------------------------------------

/** A small but diverse slice: GPR ALU, zero idioms, SSE and AVX
 *  vector, divider — AVX variants exist only on SNB+. */
bool
sliceFilter(const isa::InstrVariant &v)
{
    const std::string &m = v.mnemonic();
    return m == "ADD" || m == "XOR" || m == "PXOR" || m == "DIV" ||
           m == "MOVAPS" || m == "VPXOR";
}

core::BatchOptions
sliceOptions(size_t threads)
{
    core::BatchOptions options;
    options.num_threads = threads;
    options.characterizer.filter = sliceFilter;
    return options;
}

const std::vector<uarch::UArch> kArches = {uarch::UArch::Nehalem,
                                           uarch::UArch::Skylake};

TEST(BatchSweep, CoversEveryMeasurableVariantInIdOrder)
{
    auto report = core::runBatchSweep(defaultDb(), kArches,
                                      sliceOptions(2));
    ASSERT_EQ(report.uarches.size(), 2u);
    for (const core::UArchReport &r : report.uarches) {
        core::Characterizer tool(defaultDb(), r.arch);
        size_t expected = 0;
        for (const auto *v : defaultDb().all())
            if (tool.isMeasurable(*v) && sliceFilter(*v))
                ++expected;
        EXPECT_EQ(r.outcomes.size(), expected);
        for (size_t i = 1; i < r.outcomes.size(); ++i)
            EXPECT_LT(r.outcomes[i - 1].variant->id(),
                      r.outcomes[i].variant->id());
        EXPECT_EQ(r.numFailed(), 0u);
    }
    // Skylake supports AVX, so it measures strictly more variants.
    EXPECT_GT(report.uarches[1].outcomes.size(),
              report.uarches[0].outcomes.size());
}

TEST(BatchSweep, ParallelSweepIsByteIdenticalToSequential)
{
    auto sequential = core::runBatchSweep(defaultDb(), kArches,
                                          sliceOptions(1));
    auto parallel = core::runBatchSweep(defaultDb(), kArches,
                                        sliceOptions(4));
    ASSERT_EQ(sequential.numTasks(), parallel.numTasks());
    EXPECT_EQ(sequential.numFailed(), 0u);
    EXPECT_EQ(sequential.toXmlString(), parallel.toXmlString());
}

TEST(BatchSweep, MatchesDirectCharacterizer)
{
    auto report = core::runBatchSweep(defaultDb(), kArches,
                                      sliceOptions(4));
    // The per-uarch payload must agree with a plain Characterizer::run.
    core::Characterizer::Options copts;
    copts.filter = sliceFilter;
    core::Characterizer tool(defaultDb(), uarch::UArch::Skylake, copts);
    auto direct = tool.run();
    EXPECT_EQ(core::exportResultsXml(direct)->toString(),
              core::exportResultsXml(report.uarches[1].toSet())
                  ->toString());
}

TEST(BatchSweep, SinkObservesWorkListOrderUnderThreading)
{
    // The streaming sink must see every outcome exactly once, in the
    // deterministic work-list order (uarch-major, variant-id), no
    // matter how tasks are scheduled — the reorder buffer's contract.
    class RecordingSink : public core::SweepSink
    {
      public:
        std::vector<std::pair<uarch::UArch, const isa::InstrVariant *>>
            seen;
        bool finished = false;
        void
        onVariant(uarch::UArch arch,
                  const core::VariantOutcome &outcome) override
        {
            EXPECT_FALSE(finished);
            seen.emplace_back(arch, outcome.variant);
        }
        void finish() override { finished = true; }
    };

    RecordingSink sink;
    core::BatchOptions options = sliceOptions(4);
    options.sink = &sink;
    auto report = core::runBatchSweep(defaultDb(), kArches, options);

    EXPECT_TRUE(sink.finished);
    ASSERT_EQ(sink.seen.size(), report.numTasks());
    size_t i = 0;
    for (const core::UArchReport &r : report.uarches)
        for (const core::VariantOutcome &outcome : r.outcomes) {
            EXPECT_EQ(sink.seen[i].first, r.arch);
            EXPECT_EQ(sink.seen[i].second, outcome.variant);
            ++i;
        }
}

TEST(BatchSweep, KeepResultsFalseRequiresSink)
{
    core::BatchOptions options = sliceOptions(1);
    options.keep_results = false;
    EXPECT_THROW(core::runBatchSweep(defaultDb(), kArches, options),
                 FatalError);
}

TEST(BatchSweep, ProgressHookSeesEveryTask)
{
    std::atomic<size_t> done{0};
    std::atomic<size_t> ok_count{0};
    core::BatchOptions options = sliceOptions(4);
    options.on_variant_done = [&](uarch::UArch,
                                  const isa::InstrVariant &, bool ok) {
        ++done;
        if (ok)
            ++ok_count;
    };
    auto report = core::runBatchSweep(defaultDb(), kArches, options);
    EXPECT_EQ(done.load(), report.numTasks());
    EXPECT_EQ(ok_count.load(), report.numSucceeded());
}

TEST(BatchSweep, PerVariantFailureIsRecordedNotFatal)
{
    std::atomic<size_t> hook_calls{0};
    core::BatchOptions options = sliceOptions(4);
    options.on_variant_done = [&](uarch::UArch,
                                  const isa::InstrVariant &v, bool) {
        ++hook_calls;
        if (v.mnemonic() == "PXOR")
            throw std::runtime_error("injected failure for " + v.name());
    };
    auto report = core::runBatchSweep(defaultDb(), kArches, options);

    // Exactly once per task, even for variants whose hook threw.
    EXPECT_EQ(hook_calls.load(), report.numTasks());

    size_t failed = 0;
    for (const core::UArchReport &r : report.uarches) {
        for (const core::VariantOutcome &o : r.outcomes) {
            if (o.variant->mnemonic() == "PXOR") {
                ++failed;
                EXPECT_FALSE(o.ok);
                EXPECT_NE(o.error.find("injected failure"),
                          std::string::npos);
            } else {
                EXPECT_TRUE(o.ok) << o.variant->name();
            }
        }
    }
    EXPECT_GT(failed, 0u);
    EXPECT_EQ(report.numFailed(), failed);
    EXPECT_EQ(report.numSucceeded() + failed, report.numTasks());
}

TEST(BatchSweep, XmlReportStructure)
{
    core::BatchOptions options = sliceOptions(2);
    options.on_variant_done = [](uarch::UArch,
                                 const isa::InstrVariant &v, bool) {
        if (v.name() == "ADD_R64_R64")
            throw std::runtime_error("injected");
    };
    auto report = core::runBatchSweep(defaultDb(), kArches, options);

    auto xml = parseXml(report.toXmlString());
    EXPECT_EQ(xml->name(), "uopsBatch");
    EXPECT_EQ(xml->getAttr("uarches"), "2");
    EXPECT_EQ(xml->getAttr("failed"),
              std::to_string(report.numFailed()));

    auto uarch_nodes = xml->childrenNamed("uopsInfo");
    ASSERT_EQ(uarch_nodes.size(), 2u);
    EXPECT_EQ(uarch_nodes[0]->getAttr("architecture"), "NHM");
    EXPECT_EQ(uarch_nodes[1]->getAttr("architecture"), "SKL");
    for (const XmlNode *node : uarch_nodes) {
        auto errors = node->childrenNamed("error");
        ASSERT_EQ(errors.size(), 1u);
        EXPECT_EQ(errors[0]->getAttr("name"), "ADD_R64_R64");
        // Failed variants are excluded from the <instruction> payload.
        for (const XmlNode *instr : node->childrenNamed("instruction"))
            EXPECT_NE(instr->getAttr("name"), "ADD_R64_R64");
    }
}

TEST(BatchSweep, RejectsEmptyUArchList)
{
    EXPECT_THROW(core::runBatchSweep(defaultDb(), {}, {}), FatalError);
}

} // namespace
} // namespace uops::test
