/**
 * @file
 * Fault-injection and crash-recovery tests for the storage stack:
 * the FaultInjector itself (spec grammar, arming, tracing), the
 * atomic-write I/O seam (torn writes, per-step failures), and the
 * headline crash matrix — drive one catalog commit through *every*
 * failpoint site it crosses, kill it there, and assert that
 * reopening the directory always yields a consistent, hash-verified
 * generation: the old one before the commit point, the new one
 * after, never a mix and never a crash.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch.h"
#include "db/catalog.h"
#include "support/fault.h"
#include "support/hash.h"
#include "support/io.h"
#include "test_util.h"

namespace uops::test {
namespace {

namespace fs = std::filesystem;

/** Disarms everything on scope exit so no test can leak an armed
 *  fault into the next one (or into another suite's I/O). */
struct FaultGuard
{
    FaultGuard() { FaultInjector::instance().reset(); }
    ~FaultGuard() { FaultInjector::instance().reset(); }
};

/** Fresh, empty temp directory for one test (or one matrix entry). */
std::string
freshDir(const std::string &name)
{
    auto path = fs::temp_directory_path() /
                ("uops_fault_test_" + name);
    fs::remove_all(path);
    return path.string();
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(is)) << path;
    std::ostringstream os;
    os << is.rdbuf();
    return std::move(os).str();
}

void
spill(const std::string &path, std::string_view bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(static_cast<bool>(os)) << path;
}

/** Tiny two-mnemonic slice: fast enough to characterize per-test. */
bool
tinyFilter(const isa::InstrVariant &v)
{
    const std::string &m = v.mnemonic();
    return m == "ADD" || m == "XOR";
}

core::BatchOptions
tinyOptions()
{
    core::BatchOptions options;
    options.num_threads = 2;
    options.characterizer.filter = tinyFilter;
    options.keep_results = false;
    return options;
}

/** Generation-1 catalog: Nehalem only. */
std::shared_ptr<const db::DatabaseCatalog>
baseCatalog()
{
    static const auto catalog =
        db::runCatalogSweep(defaultDb(), {uarch::UArch::Nehalem},
                            tinyOptions(), nullptr);
    return catalog;
}

/** Generation-2 catalog: Skylake spliced onto the base. */
std::shared_ptr<const db::DatabaseCatalog>
splicedCatalog()
{
    static const auto catalog =
        db::runCatalogSweep(defaultDb(), {uarch::UArch::Skylake},
                            tinyOptions(), baseCatalog().get());
    return catalog;
}

/** The generation a reopened directory serves, checked for internal
 *  consistency against the golden catalogs in both load modes. */
uint64_t
verifyReopen(const std::string &dir, db::RecoveryReport *report)
{
    auto loaded = db::loadCatalogDir(dir, db::LoadMode::Mmap, true,
                                     report);
    auto streamed = db::loadCatalogDir(dir, db::LoadMode::Stream);
    EXPECT_EQ(loaded->generation(), streamed->generation());
    EXPECT_EQ(loaded->numRecords(), streamed->numRecords());

    const db::DatabaseCatalog &want = loaded->generation() == 1
                                          ? *baseCatalog()
                                          : *splicedCatalog();
    EXPECT_EQ(loaded->numRecords(), want.numRecords());
    EXPECT_EQ(loaded->uarches(), want.uarches());
    auto got = loaded->find(uarch::UArch::Nehalem, "ADD_R64_R64");
    auto ref = want.find(uarch::UArch::Nehalem, "ADD_R64_R64");
    EXPECT_EQ(got.has_value(), ref.has_value());
    if (got && ref)
        EXPECT_EQ(got->tpMeasured(), ref->tpMeasured());
    return loaded->generation();
}

// ---------------------------------------------------------------------
// FaultInjector mechanics.
// ---------------------------------------------------------------------

TEST(FaultInjector, ParseSpecGrammar)
{
    FaultSpec spec = FaultInjector::parseSpec("error");
    EXPECT_EQ(spec.action, FaultSpec::Action::Error);
    EXPECT_EQ(spec.on_hit, 1u);
    EXPECT_FALSE(spec.always);
    EXPECT_FALSE(spec.partial);

    spec = FaultInjector::parseSpec("crash@3");
    EXPECT_EQ(spec.action, FaultSpec::Action::Crash);
    EXPECT_EQ(spec.on_hit, 3u);

    spec = FaultInjector::parseSpec("error@2*~");
    EXPECT_EQ(spec.action, FaultSpec::Action::Error);
    EXPECT_EQ(spec.on_hit, 2u);
    EXPECT_TRUE(spec.always);
    EXPECT_TRUE(spec.partial);

    EXPECT_THROW(FaultInjector::parseSpec("explode"), FatalError);
    EXPECT_THROW(FaultInjector::parseSpec("error@0"), FatalError);
    EXPECT_THROW(FaultInjector::parseSpec("error@x"), FatalError);
}

TEST(FaultInjector, FiresOnceOnTheArmedHit)
{
    FaultGuard guard;
    auto &injector = FaultInjector::instance();
    FaultSpec spec;
    spec.on_hit = 2;
    injector.arm("t.site", spec);

    EXPECT_FALSE(injector.poll("t.site").has_value());   // hit 1
    EXPECT_TRUE(injector.poll("t.site").has_value());    // hit 2
    EXPECT_FALSE(injector.poll("t.site").has_value());   // disarmed
    EXPECT_EQ(injector.hits("t.site"), 3u);
    EXPECT_FALSE(injector.poll("other.site").has_value());
}

TEST(FaultInjector, AlwaysKeepsFiring)
{
    FaultGuard guard;
    auto &injector = FaultInjector::instance();
    FaultSpec spec;
    spec.on_hit = 2;
    spec.always = true;
    injector.arm("t.site", spec);

    EXPECT_FALSE(injector.poll("t.site").has_value());
    EXPECT_TRUE(injector.poll("t.site").has_value());
    EXPECT_TRUE(injector.poll("t.site").has_value());
    injector.disarm("t.site");
    EXPECT_FALSE(injector.poll("t.site").has_value());
}

TEST(FaultInjector, TracingEnumeratesSitesInFirstHitOrder)
{
    FaultGuard guard;
    auto &injector = FaultInjector::instance();
    injector.setTracing(true);
    (void)injector.poll("b.site");
    (void)injector.poll("a.site");
    (void)injector.poll("b.site");

    auto traced = injector.tracedSites();
    ASSERT_EQ(traced.size(), 2u);
    EXPECT_EQ(traced[0].first, "b.site");
    EXPECT_EQ(traced[0].second, 2u);
    EXPECT_EQ(traced[1].first, "a.site");
    EXPECT_EQ(traced[1].second, 1u);

    injector.reset();
    EXPECT_TRUE(injector.tracedSites().empty());
    EXPECT_EQ(injector.hits("b.site"), 0u);
}

TEST(FaultInjector, ArmFromEnvironmentStyleList)
{
    FaultGuard guard;
    auto &injector = FaultInjector::instance();
    injector.armFromList("a.site=crash, b.site=error@2*");
    EXPECT_TRUE(injector.poll("a.site").has_value());
    EXPECT_FALSE(injector.poll("b.site").has_value());
    auto spec = injector.poll("b.site");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->action, FaultSpec::Action::Error);

    injector.armFromList("");   // no-op
    EXPECT_THROW(injector.armFromList("missing-equals"), FatalError);
    EXPECT_THROW(injector.armFromList("=error"), FatalError);
}

// ---------------------------------------------------------------------
// The atomic-write seam.
// ---------------------------------------------------------------------

TEST(AtomicWrite, RoundTripAndOverwrite)
{
    FaultGuard guard;
    const std::string dir = freshDir("io_roundtrip");
    fs::create_directories(dir);
    const std::string path = dir + "/data.bin";

    writeFileAtomic(path, "first", "t");
    EXPECT_EQ(readFileBytes(path, "t"), "first");
    writeFileAtomic(path, "second", "t");
    EXPECT_EQ(readFileBytes(path, "t"), "second");
    EXPECT_FALSE(fs::exists(path + ".tmp"));

    EXPECT_TRUE(removeFile(path));
    EXPECT_FALSE(removeFile(path));   // ENOENT is not an error
    EXPECT_THROW(readFileBytes(path, "t"), IoError);
}

TEST(AtomicWrite, EveryStepFailureLeavesTheOldContent)
{
    FaultGuard guard;
    auto &injector = FaultInjector::instance();
    const std::string dir = freshDir("io_steps");
    fs::create_directories(dir);
    const std::string path = dir + "/data.bin";
    writeFileAtomic(path, "old", "t");

    // Failing any step up to and including the rename must leave the
    // committed content untouched; only the dir_fsync step runs
    // after the commit point.
    for (const char *step :
         {"t.open", "t.write", "t.fsync", "t.rename"}) {
        injector.reset();
        injector.arm(step, FaultInjector::parseSpec("error"));
        EXPECT_THROW(writeFileAtomic(path, "new", "t"), IoError)
            << step;
        EXPECT_EQ(slurp(path), "old") << step;
    }

    injector.reset();
    injector.arm("t.dir_fsync", FaultInjector::parseSpec("error"));
    EXPECT_THROW(writeFileAtomic(path, "new", "t"), IoError);
    EXPECT_EQ(slurp(path), "new");   // rename already committed
}

TEST(AtomicWrite, TornWriteTearsTheTmpFileOnly)
{
    FaultGuard guard;
    auto &injector = FaultInjector::instance();
    const std::string dir = freshDir("io_torn");
    fs::create_directories(dir);
    const std::string path = dir + "/data.bin";
    writeFileAtomic(path, "old-bytes", "t");

    injector.arm("t.write", FaultInjector::parseSpec("crash~"));
    const std::string payload = "0123456789abcdef";
    EXPECT_THROW(writeFileAtomic(path, payload, "t"), InjectedCrash);

    // Half the payload reached the tmp file — a torn write — and the
    // final name still holds the previous commit.
    EXPECT_EQ(slurp(path), "old-bytes");
    ASSERT_TRUE(fs::exists(path + ".tmp"));
    EXPECT_EQ(slurp(path + ".tmp"), payload.substr(0, 8));

    // Retrying after the "reboot" overwrites the stray tmp cleanly.
    injector.reset();
    writeFileAtomic(path, payload, "t");
    EXPECT_EQ(slurp(path), payload);
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

// ---------------------------------------------------------------------
// The crash matrix (acceptance criterion of this PR).
// ---------------------------------------------------------------------

/** Every (site, occurrence) pair a generation-2 commit crosses,
 *  enumerated by tracing a clean run. */
std::vector<std::pair<std::string, uint64_t>>
traceCommitSites()
{
    FaultGuard guard;
    const std::string dir = freshDir("trace");
    db::saveCatalogDir(*baseCatalog(), dir);

    auto &injector = FaultInjector::instance();
    injector.reset();
    injector.setTracing(true);
    db::saveCatalogDir(*splicedCatalog(), dir);
    auto traced = injector.tracedSites();
    injector.reset();
    return traced;
}

TEST(CrashMatrix, CommitCrossesTheExpectedFailpoints)
{
    auto traced = traceCommitSites();
    std::set<std::string> sites;
    for (const auto &[site, hits] : traced)
        sites.insert(site);
    // The incremental save verifies the pre-existing shard, writes
    // the fresh one atomically, and commits the manifest atomically.
    for (const char *site :
         {"catalog.shard.read", "catalog.shard.open",
          "catalog.shard.write", "catalog.shard.fsync",
          "catalog.shard.rename", "catalog.shard.dir_fsync",
          "catalog.manifest.open", "catalog.manifest.write",
          "catalog.manifest.fsync", "catalog.manifest.rename",
          "catalog.manifest.dir_fsync"})
        EXPECT_TRUE(sites.count(site)) << site;
}

TEST(CrashMatrix, EveryCrashPointRecoversToAConsistentGeneration)
{
    auto traced = traceCommitSites();
    ASSERT_FALSE(traced.empty());

    FaultGuard guard;
    auto &injector = FaultInjector::instance();
    size_t entry = 0;
    for (const auto &[site, occurrences] : traced) {
        for (uint64_t occ = 1; occ <= occurrences; ++occ, ++entry) {
            SCOPED_TRACE(site + "@" + std::to_string(occ));
            const std::string dir =
                freshDir("matrix_" + std::to_string(entry));
            db::saveCatalogDir(*baseCatalog(), dir);

            FaultSpec spec;
            spec.action = FaultSpec::Action::Crash;
            spec.on_hit = occ;
            injector.reset();
            injector.arm(site, spec);
            EXPECT_THROW(db::saveCatalogDir(*splicedCatalog(), dir),
                         InjectedCrash);
            injector.reset();

            // Whatever the simulated kill left behind, reopening
            // must produce a verified generation: the new one only
            // when the crash hit after the manifest's commit point.
            db::RecoveryReport report;
            uint64_t generation = verifyReopen(dir, &report);
            if (site == "catalog.manifest.dir_fsync")
                EXPECT_EQ(generation, 2u);
            else
                EXPECT_EQ(generation, 1u);
            EXPECT_EQ(report.generation, generation);

            // The report-enabled reopen garbage-collected the debris:
            // a second open is pristine, and no .tmp files remain.
            db::RecoveryReport clean;
            EXPECT_EQ(verifyReopen(dir, &clean), generation);
            EXPECT_FALSE(clean.recovered);
            EXPECT_TRUE(clean.events.empty());
            for (const auto &de : fs::directory_iterator(dir))
                EXPECT_NE(de.path().extension(), ".tmp")
                    << de.path();

            // And the interrupted publish can simply be retried.
            db::saveCatalogDir(*splicedCatalog(), dir);
            EXPECT_EQ(verifyReopen(dir, nullptr), 2u);
        }
    }
    EXPECT_GE(entry, 11u);
}

TEST(CrashMatrix, InjectedErrorsFailTheSaveButNeverTheStore)
{
    auto traced = traceCommitSites();
    FaultGuard guard;
    auto &injector = FaultInjector::instance();
    size_t entry = 0;
    for (const auto &[site, occurrences] : traced) {
        for (uint64_t occ = 1; occ <= occurrences; ++occ, ++entry) {
            SCOPED_TRACE(site + "@" + std::to_string(occ));
            const std::string dir =
                freshDir("errors_" + std::to_string(entry));
            db::saveCatalogDir(*baseCatalog(), dir);

            FaultSpec spec;
            spec.action = FaultSpec::Action::Error;
            spec.on_hit = occ;
            injector.reset();
            injector.arm(site, spec);
            // An injected I/O error is an IoError, never mistakable
            // for a simulated kill.
            try {
                db::saveCatalogDir(*splicedCatalog(), dir);
                // dir_fsync errors fire after the commit point; the
                // save may not throw only if nothing fired at all,
                // which the hit counter rules out below.
                ADD_FAILURE() << "save did not fail at " << site;
            } catch (const InjectedCrash &) {
                ADD_FAILURE() << "error spec threw InjectedCrash";
            } catch (const FatalError &) {
            }
            EXPECT_GE(injector.hits(site), occ);
            injector.reset();

            db::RecoveryReport report;
            uint64_t generation = verifyReopen(dir, &report);
            EXPECT_TRUE(generation == 1u || generation == 2u);
        }
    }
}

// ---------------------------------------------------------------------
// Corruption corpus: truncations and bit flips must yield structured
// errors or recovery, never a crash (run under ASan/UBSan in CI).
// ---------------------------------------------------------------------

TEST(CorruptionCorpus, EveryManifestTruncationIsRejected)
{
    FaultGuard guard;
    const std::string dir = freshDir("trunc_manifest");
    db::saveCatalogDir(*baseCatalog(), dir);
    const std::string manifest_path =
        dir + "/" + db::manifestFileName(1);
    const std::string golden = slurp(manifest_path);
    ASSERT_FALSE(golden.empty());

    for (size_t len = 0; len < golden.size(); ++len) {
        SCOPED_TRACE("length " + std::to_string(len));
        spill(manifest_path, std::string_view(golden).substr(0, len));
        // The sole generation's manifest is a strict prefix: every
        // load must throw a structured error (and never crash).
        EXPECT_THROW(db::loadCatalogDir(dir, db::LoadMode::Mmap),
                     FatalError);
        EXPECT_THROW(db::loadCatalogDir(dir, db::LoadMode::Stream),
                     FatalError);
    }
    spill(manifest_path, golden);
    EXPECT_EQ(verifyReopen(dir, nullptr), 1u);
}

TEST(CorruptionCorpus, TruncatedNewestManifestFallsBack)
{
    FaultGuard guard;
    const std::string dir = freshDir("trunc_fallback");
    db::saveCatalogDir(*baseCatalog(), dir);
    db::saveCatalogDir(*splicedCatalog(), dir);
    const std::string newest = dir + "/" + db::manifestFileName(2);
    const std::string golden = slurp(newest);

    for (size_t len = 0; len < golden.size();
         len += 7) {   // sampled: every truncation class, not byte
        SCOPED_TRACE("length " + std::to_string(len));
        spill(newest, std::string_view(golden).substr(0, len));
        // No report: recovery without garbage collection, so the
        // truncated manifest survives for the next iteration.
        auto loaded = db::loadCatalogDir(dir, db::LoadMode::Mmap);
        EXPECT_EQ(loaded->generation(), 1u);
    }
    spill(newest, golden);
    EXPECT_EQ(verifyReopen(dir, nullptr), 2u);
}

TEST(CorruptionCorpus, ShardBitFlipsAreAlwaysDetected)
{
    FaultGuard guard;
    const std::string dir = freshDir("bitflip");
    db::saveCatalogDir(*baseCatalog(), dir);
    std::string shard_path;
    for (const auto &de : fs::directory_iterator(dir))
        if (de.path().extension() == ".shard")
            shard_path = de.path().string();
    ASSERT_FALSE(shard_path.empty());
    const std::string golden = slurp(shard_path);

    for (size_t pos = 0; pos < golden.size();
         pos += 61) {   // sampled positions across the container
        SCOPED_TRACE("flip at " + std::to_string(pos));
        std::string bad = golden;
        bad[pos] = static_cast<char>(bad[pos] ^ 0x20);
        spill(shard_path, bad);
        // Hash verification catches any flip before shard parsing,
        // in both load modes, as a structured error.
        EXPECT_THROW(db::loadCatalogDir(dir, db::LoadMode::Mmap),
                     FatalError);
        EXPECT_THROW(db::loadCatalogDir(dir, db::LoadMode::Stream),
                     FatalError);
    }
    spill(shard_path, golden);
    EXPECT_EQ(verifyReopen(dir, nullptr), 1u);
}

TEST(CorruptionCorpus, TruncatedShardsAreAlwaysDetected)
{
    FaultGuard guard;
    const std::string dir = freshDir("trunc_shard");
    db::saveCatalogDir(*baseCatalog(), dir);
    std::string shard_path;
    for (const auto &de : fs::directory_iterator(dir))
        if (de.path().extension() == ".shard")
            shard_path = de.path().string();
    ASSERT_FALSE(shard_path.empty());
    const std::string golden = slurp(shard_path);

    for (size_t len = 0; len < golden.size(); len += 97) {
        SCOPED_TRACE("length " + std::to_string(len));
        spill(shard_path, std::string_view(golden).substr(0, len));
        EXPECT_THROW(db::loadCatalogDir(dir, db::LoadMode::Mmap),
                     FatalError);
        EXPECT_THROW(db::loadCatalogDir(dir, db::LoadMode::Stream),
                     FatalError);
    }
    spill(shard_path, golden);
    EXPECT_EQ(verifyReopen(dir, nullptr), 1u);
}

// ---------------------------------------------------------------------
// Recovery reporting and garbage collection.
// ---------------------------------------------------------------------

/** Corrupt the stored hash of generation 2's manifest: it still
 *  parses, but shard verification must reject it. */
void
corruptNewestManifest(const std::string &dir)
{
    const std::string path = dir + "/" + db::manifestFileName(2);
    std::string bytes = slurp(path);
    // Offset 40: the first shard record's content hash (24-byte
    // header, then arch + record count, 8 bytes each).
    ASSERT_GT(bytes.size(), 48u);
    bytes[40] = static_cast<char>(bytes[40] ^ 0xff);
    spill(path, bytes);
}

TEST(Recovery, ReaderWithoutReportNeverDeletes)
{
    FaultGuard guard;
    const std::string dir = freshDir("no_gc");
    db::saveCatalogDir(*baseCatalog(), dir);
    db::saveCatalogDir(*splicedCatalog(), dir);
    corruptNewestManifest(dir);
    spill(dir + "/stray.shard.tmp", "half a write");

    std::set<std::string> before;
    for (const auto &de : fs::directory_iterator(dir))
        before.insert(de.path().filename().string());

    // A report-less load recovers (falls back to generation 1) but
    // must not remove a single file — it could be racing a publisher
    // whose commit is mid-flight, not crashed.
    auto loaded = db::loadCatalogDir(dir, db::LoadMode::Mmap);
    EXPECT_EQ(loaded->generation(), 1u);

    std::set<std::string> after;
    for (const auto &de : fs::directory_iterator(dir))
        after.insert(de.path().filename().string());
    EXPECT_EQ(before, after);
}

TEST(Recovery, ReportEnablesGarbageCollection)
{
    FaultGuard guard;
    const std::string dir = freshDir("gc");
    db::saveCatalogDir(*baseCatalog(), dir);
    db::saveCatalogDir(*splicedCatalog(), dir);
    corruptNewestManifest(dir);
    spill(dir + "/stray.shard.tmp", "half a write");
    spill(dir + "/ZZZ-deadbeef.shard", "not referenced by anyone");

    db::RecoveryReport report;
    auto loaded = db::loadCatalogDir(dir, db::LoadMode::Mmap, true,
                                     &report);
    EXPECT_EQ(loaded->generation(), 1u);
    EXPECT_TRUE(report.recovered);
    EXPECT_EQ(report.generation, 1u);
    ASSERT_EQ(report.rejected_generations.size(), 1u);
    EXPECT_EQ(report.rejected_generations[0], 2u);
    EXPECT_FALSE(report.events.empty());
    EXPECT_NE(report.summary().find("recovered to generation 1"),
              std::string::npos);

    std::set<std::string> removed(report.removed_files.begin(),
                                  report.removed_files.end());
    EXPECT_TRUE(removed.count(db::manifestFileName(2)));
    EXPECT_TRUE(removed.count("stray.shard.tmp"));
    EXPECT_TRUE(removed.count("ZZZ-deadbeef.shard"));
    // The generation-2-only shard lost its last referencing manifest.
    size_t shard_gc = 0;
    for (const std::string &name : removed)
        if (name.size() > 6 && name.compare(0, 4, "SKL-") == 0)
            ++shard_gc;
    EXPECT_EQ(shard_gc, 1u);

    // After collection the store is pristine generation 1, and the
    // publish can be retried from scratch.
    db::RecoveryReport clean;
    EXPECT_EQ(verifyReopen(dir, &clean), 1u);
    EXPECT_FALSE(clean.recovered);
    EXPECT_TRUE(clean.removed_files.empty());
    db::saveCatalogDir(*splicedCatalog(), dir);
    EXPECT_EQ(verifyReopen(dir, nullptr), 2u);
}

TEST(Recovery, AllGenerationsBadIsAStructuredError)
{
    FaultGuard guard;
    const std::string dir = freshDir("all_bad");
    db::saveCatalogDir(*baseCatalog(), dir);
    const std::string manifest_path =
        dir + "/" + db::manifestFileName(1);
    spill(manifest_path, "UOPSMF\x1a\n garbage");

    try {
        db::loadCatalogDir(dir, db::LoadMode::Mmap);
        FAIL() << "expected CatalogError";
    } catch (const db::CatalogError &e) {
        // The error names the directory and carries the per-candidate
        // rejection trail.
        EXPECT_NE(std::string(e.what()).find("no loadable generation"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("rejected"),
                  std::string::npos);
    }

    EXPECT_THROW(db::openCatalog(dir), FatalError);
}

TEST(Recovery, MissingShardFallsBackAndReports)
{
    FaultGuard guard;
    const std::string dir = freshDir("missing_shard");
    db::saveCatalogDir(*baseCatalog(), dir);
    db::saveCatalogDir(*splicedCatalog(), dir);
    // Delete the generation-2-only shard out from under its manifest.
    std::vector<std::string> skl_shards;
    for (const auto &de : fs::directory_iterator(dir)) {
        const std::string name = de.path().filename().string();
        if (name.compare(0, 4, "SKL-") == 0)
            skl_shards.push_back(de.path().string());
    }
    ASSERT_FALSE(skl_shards.empty());
    for (const std::string &path : skl_shards)
        ASSERT_TRUE(removeFile(path));

    db::RecoveryReport report;
    EXPECT_EQ(verifyReopen(dir, &report), 1u);
    EXPECT_TRUE(report.recovered);
    EXPECT_EQ(report.rejected_generations,
              std::vector<uint64_t>{2});
}

TEST(Recovery, ManifestRetentionKeepsRecentFallbacks)
{
    FaultGuard guard;
    const std::string dir = freshDir("retention");
    // Publish generations 1..7 with identical content (renumbered
    // copies of the base shards); only the newest few manifests may
    // survive as recovery fallbacks.
    db::saveCatalogDir(*baseCatalog(), dir);
    for (uint64_t gen = 2; gen <= 7; ++gen) {
        std::vector<db::ShardEntry> shards = baseCatalog()->shards();
        db::DatabaseCatalog renumbered(std::move(shards), gen);
        db::saveCatalogDir(renumbered, dir);
    }

    size_t manifests = 0;
    uint64_t newest = 0;
    for (const auto &de : fs::directory_iterator(dir)) {
        const std::string name = de.path().filename().string();
        if (name.compare(0, 9, "manifest.") == 0) {
            ++manifests;
            newest = std::max(
                newest,
                static_cast<uint64_t>(std::stoull(name.substr(9))));
        }
    }
    EXPECT_EQ(manifests, 4u);   // retention window
    EXPECT_EQ(newest, 7u);
    EXPECT_EQ(db::readCatalogGeneration(dir).value_or(0), 7u);
    auto loaded = db::loadCatalogDir(dir);
    EXPECT_EQ(loaded->generation(), 7u);
    EXPECT_EQ(loaded->numRecords(), baseCatalog()->numRecords());
}

} // namespace
} // namespace uops::test
