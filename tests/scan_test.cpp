/**
 * @file
 * Property and regression tests for the predicate-pushdown scan
 * executor (src/db/scan.*): randomized composed predicates must
 * answer exactly like a brute-force RecordView filter over a seeded
 * all-nine-uarch catalog, the index/arch-run short-circuits must
 * actually fire (asserted through ScanStats), the fixed-point
 * throughput-bound conversion must round the way the doc comment
 * promises, and the cross-generation analytics merge must agree with
 * a hand-built name-keyed diff.
 */

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch.h"
#include "db/catalog.h"
#include "db/scan.h"
#include "support/status.h"
#include "test_util.h"

namespace uops::test {
namespace {

/** Same diverse slice as db_test (GPR ALU, zero idiom, SSE, AVX,
 *  divider, memory), but swept across every supported generation so
 *  arch-run restriction and analytics merges see all nine shards. */
bool
scanSliceFilter(const isa::InstrVariant &v)
{
    const std::string &m = v.mnemonic();
    return m == "ADD" || m == "XOR" || m == "PXOR" || m == "DIV" ||
           m == "MOVAPS" || m == "VPXOR" || m == "IMUL";
}

const core::CharacterizationReport &
nineReport()
{
    static const core::CharacterizationReport report = [] {
        core::BatchOptions options;
        options.num_threads = 2;
        options.characterizer.filter = scanSliceFilter;
        return core::runBatchSweep(defaultDb(), uarch::allUArches(),
                                   options);
    }();
    return report;
}

const db::InstructionDatabase &
nineDb()
{
    static const db::InstructionDatabase *database = [] {
        auto *built = new db::InstructionDatabase();
        built->ingest(nineReport());
        return built;
    }();
    return *database;
}

std::shared_ptr<const db::DatabaseCatalog>
nineCatalog()
{
    static const auto catalog =
        db::DatabaseCatalog::fromMonolith(nineDb(), 1);
    return catalog;
}

/** The RecordFlag byte reconstructed purely through the public
 *  RecordView accessors — the reference the packed column must
 *  agree with. */
uint8_t
recordFlags(const db::RecordView &r)
{
    uint8_t flags = 0;
    if (r.tpWithBreakers())
        flags |= db::kHasTpBreakers;
    if (r.tpSlow())
        flags |= db::kHasTpSlow;
    if (r.tpFromPorts())
        flags |= db::kHasTpPorts;
    if (r.sameRegCycles())
        flags |= db::kHasSameReg;
    if (r.storeRoundTrip())
        flags |= db::kHasStoreRt;
    return flags;
}

/** Brute-force reference semantics of one Query conjunct set,
 *  written against RecordView only (no columns, no indexes). */
bool
matchesBruteForce(const db::RecordView &r, const db::Query &q)
{
    if (q.arch && r.arch() != *q.arch)
        return false;
    if (q.name && r.name() != *q.name)
        return false;
    if (q.mnemonic && r.mnemonic() != *q.mnemonic)
        return false;
    if (q.extension && r.extension() != *q.extension)
        return false;
    if (q.uses_ports &&
        (r.portUnion() & q.uses_ports) != q.uses_ports)
        return false;
    if (q.ports_subset &&
        (r.portUnion() & static_cast<uarch::PortMask>(
                             ~*q.ports_subset)) != 0)
        return false;
    if (q.ports_exact && r.portUnion() != *q.ports_exact)
        return false;
    if (q.tp_min && r.tpMeasured() < *q.tp_min)
        return false;
    if (q.tp_max && *q.tp_max < r.tpMeasured())
        return false;
    if (q.lat_min && r.maxLatency() < *q.lat_min)
        return false;
    if (q.lat_max && r.maxLatency() > *q.lat_max)
        return false;
    if (q.uops_min && r.uopCount() < *q.uops_min)
        return false;
    if (q.uops_max && r.uopCount() > *q.uops_max)
        return false;
    if (q.has_flags &&
        (recordFlags(r) & q.has_flags) != q.has_flags)
        return false;
    return true;
}

std::vector<uint32_t>
bruteForceSearch(const db::InstructionDatabase &db, const db::Query &q)
{
    std::vector<uint32_t> rows;
    for (uint32_t row = 0;
         row < static_cast<uint32_t>(db.numRecords()); ++row) {
        if (rows.size() >= q.limit)
            break;
        if (matchesBruteForce(db.record(row), q))
            rows.push_back(row);
    }
    return rows;
}

/** One random query: every field set with independent probability,
 *  operands sampled from a real row half the time (so conjunctions
 *  actually hit) and drawn blind otherwise (so misses and
 *  unsatisfiable combinations are exercised too). */
db::Query
randomQuery(std::mt19937 &rng, const db::InstructionDatabase &db)
{
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::uniform_int_distribution<uint32_t> any_row(
        0, static_cast<uint32_t>(db.numRecords()) - 1);
    db::RecordView sample = db.record(any_row(rng));

    db::Query q;
    if (coin(rng) < 0.5)
        q.arch = coin(rng) < 0.7
                     ? sample.arch()
                     : uarch::allUArches()[any_row(rng) % 9];
    if (coin(rng) < 0.2)
        q.name = std::string(sample.name());
    if (coin(rng) < 0.25)
        q.mnemonic = coin(rng) < 0.8 ? std::string(sample.mnemonic())
                                     : std::string("NOSUCH");
    if (coin(rng) < 0.2)
        q.extension = std::string(sample.extension());
    if (coin(rng) < 0.4)
        q.uses_ports = coin(rng) < 0.7
                           ? sample.portUnion()
                           : static_cast<uarch::PortMask>(
                                 any_row(rng) & 0xFF);
    if (coin(rng) < 0.2)
        q.ports_subset = static_cast<uarch::PortMask>(
            sample.portUnion() | (any_row(rng) & 0x3F));
    if (coin(rng) < 0.15)
        q.ports_exact = sample.portUnion();
    if (coin(rng) < 0.3) {
        Cycles tp = sample.tpMeasured();
        if (coin(rng) < 0.5)
            q.tp_min = Cycles::fromHundredths(
                tp.hundredths() - static_cast<int64_t>(
                                      any_row(rng) % 100));
        if (coin(rng) < 0.5)
            q.tp_max = Cycles::fromHundredths(
                tp.hundredths() + static_cast<int64_t>(
                                      any_row(rng) % 100));
    }
    if (coin(rng) < 0.25) {
        if (coin(rng) < 0.5)
            q.lat_min = sample.maxLatency();
        else
            q.lat_max = sample.maxLatency();
    }
    if (coin(rng) < 0.25) {
        if (coin(rng) < 0.5)
            q.uops_min = sample.uopCount();
        else
            q.uops_max = sample.uopCount();
    }
    if (coin(rng) < 0.25)
        q.has_flags = recordFlags(sample) &
                      static_cast<uint8_t>(any_row(rng) & 0x1F);
    if (coin(rng) < 0.3)
        q.limit = 1 + any_row(rng) % 20;
    return q;
}

// ---------------------------------------------------------------------
// The core property: executor == brute force, always.
// ---------------------------------------------------------------------

TEST(ScanProperty, RandomComposedPredicatesMatchBruteForce)
{
    const db::InstructionDatabase &db = nineDb();
    ASSERT_GT(db.numRecords(), 400u);

    std::mt19937 rng(0x5EED);
    for (int trial = 0; trial < 400; ++trial) {
        db::Query q = randomQuery(rng, db);
        auto expected = bruteForceSearch(db, q);
        auto actual = db.search(q);
        ASSERT_EQ(expected, actual)
            << "trial " << trial << " diverged from brute force";
    }
}

TEST(ScanProperty, ExecutorWithExplicitPredicatesMatchesQueryPath)
{
    // The factory-built PredicateSet must behave exactly like the
    // Query compiled through predicatesFromQuery.
    const db::InstructionDatabase &db = nineDb();
    db::Query q;
    q.arch = uarch::UArch::Skylake;
    q.uses_ports = uarch::portMask({0, 5});
    q.lat_max = 6;

    db::PredicateSet preds;
    preds.add(db::archIs(uarch::UArch::Skylake));
    preds.add(db::portsSuperset(uarch::portMask({0, 5})));
    preds.add(db::latBetween(std::nullopt, 6));

    db::ScanExecutor exec(db);
    EXPECT_EQ(db.search(q), exec.run(preds));
    EXPECT_EQ(bruteForceSearch(db, q), exec.run(preds));
}

TEST(ScanProperty, EmptyPredicateSetReturnsEveryRowInOrder)
{
    const db::InstructionDatabase &db = nineDb();
    db::ScanExecutor exec(db);
    auto rows = exec.run(db::PredicateSet{});
    ASSERT_EQ(rows.size(), db.numRecords());
    EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
    EXPECT_EQ(rows.front(), 0u);
    EXPECT_EQ(rows.back(),
              static_cast<uint32_t>(db.numRecords()) - 1);
}

TEST(ScanProperty, LimitTruncatesFirstMatchesExactly)
{
    const db::InstructionDatabase &db = nineDb();
    db::Query q;
    q.uses_ports = uarch::portMask({0});
    auto all = db.search(q);
    ASSERT_GT(all.size(), 10u);
    q.limit = 7;
    auto capped = db.search(q);
    ASSERT_EQ(capped.size(), 7u);
    EXPECT_TRUE(std::equal(capped.begin(), capped.end(), all.begin()));
}

TEST(ScanProperty, PredicateSetOverflowThrows)
{
    db::PredicateSet preds;
    for (size_t i = 0; i < db::PredicateSet::kCapacity; ++i)
        preds.add(db::hasFlags(1));
    EXPECT_THROW(preds.add(db::hasFlags(1)), FatalError);
}

// ---------------------------------------------------------------------
// Short-circuit tiers, pinned through ScanStats.
// ---------------------------------------------------------------------

TEST(ScanStats, StringIndexShortCircuitsTheScan)
{
    const db::InstructionDatabase &db = nineDb();
    db::PredicateSet preds;
    preds.add(db::mnemonicIs("ADD"));
    preds.add(db::archIs(uarch::UArch::Skylake));

    db::ScanStats stats;
    db::ScanExecutor exec(db);
    auto rows = exec.run(preds, SIZE_MAX, &stats);
    ASSERT_FALSE(rows.empty());
    EXPECT_TRUE(stats.used_string_index);
    // Candidates were the mnemonic's postings, not the table.
    EXPECT_LT(stats.rows_considered, db.numRecords());
    EXPECT_EQ(stats.rows_matched, rows.size());
}

TEST(ScanStats, UnknownStringOperandAnswersEmptyWithoutScanning)
{
    const db::InstructionDatabase &db = nineDb();
    db::PredicateSet preds;
    preds.add(db::nameIs("NO SUCH VARIANT"));
    db::ScanStats stats;
    db::ScanExecutor exec(db);
    EXPECT_TRUE(exec.run(preds, SIZE_MAX, &stats).empty());
    EXPECT_EQ(stats.rows_considered, 0u);
}

TEST(ScanStats, ArchPredicateCollapsesToContiguousRange)
{
    const db::InstructionDatabase &db = nineDb();
    db::PredicateSet preds;
    preds.add(db::archIs(uarch::UArch::Haswell));
    db::ScanStats stats;
    db::ScanExecutor exec(db);
    auto rows = exec.run(preds, SIZE_MAX, &stats);
    ASSERT_FALSE(rows.empty());
    EXPECT_TRUE(stats.used_arch_range);
    // The range restriction considered exactly the uarch's rows.
    EXPECT_EQ(stats.rows_considered, rows.size());
    EXPECT_EQ(stats.rows_matched, rows.size());
}

TEST(ScanStats, SelectiveThroughputWindowUsesOrderIndex)
{
    const db::InstructionDatabase &db = nineDb();
    // The most expensive throughput in the slice (the divider) is
    // rare; its exact window is far below the n/4 cutoff, so the
    // order index must pre-filter instead of scanning.
    Cycles max_tp = Cycles::fromHundredths(0);
    for (uint32_t row = 0;
         row < static_cast<uint32_t>(db.numRecords()); ++row)
        max_tp = std::max(max_tp, db.record(row).tpMeasured());
    size_t window = 0;
    for (uint32_t row = 0;
         row < static_cast<uint32_t>(db.numRecords()); ++row)
        window += db.record(row).tpMeasured() == max_tp;
    ASSERT_LT(window * 4, db.numRecords())
        << "fixture drift: the max-throughput window is no longer "
           "selective";

    db::PredicateSet preds;
    preds.add(db::tpBetween(max_tp, max_tp));
    db::ScanStats stats;
    db::ScanExecutor exec(db);
    auto rows = exec.run(preds, SIZE_MAX, &stats);
    EXPECT_EQ(rows.size(), window);
    EXPECT_TRUE(stats.used_order_index);
    EXPECT_EQ(stats.rows_considered, window);
    EXPECT_EQ(db.search([&] {
                  db::Query q;
                  q.tp_min = max_tp;
                  q.tp_max = max_tp;
                  return q;
              }()),
              rows);
}

// ---------------------------------------------------------------------
// Fixed-point throughput bounds (the double -> Cycles boundary).
// ---------------------------------------------------------------------

TEST(TpBounds, ExactHundredthsMapToThemselves)
{
    // 0.33 * 100 is 32.999...96 in binary; the bound must still be
    // the exact hundredth, not the rounded-down 32 / rounded-up 33
    // pair a naive ceil/floor would produce.
    EXPECT_EQ(db::tpBoundMin(0.33).hundredths(), 33);
    EXPECT_EQ(db::tpBoundMax(0.33).hundredths(), 33);
    EXPECT_EQ(db::tpBoundMin(1.0).hundredths(), 100);
    EXPECT_EQ(db::tpBoundMax(1.0).hundredths(), 100);
}

TEST(TpBounds, InBetweenValuesRoundInward)
{
    // tp_min takes the ceiling (smallest representable value inside
    // [v, inf)), tp_max the floor — so a range like [0.331, 1.005]
    // can only shrink, never admit a record outside the request.
    EXPECT_EQ(db::tpBoundMin(0.331).hundredths(), 34);
    EXPECT_EQ(db::tpBoundMax(0.331).hundredths(), 33);
    EXPECT_EQ(db::tpBoundMin(1.005).hundredths(), 101);
    EXPECT_EQ(db::tpBoundMax(1.005).hundredths(), 100);
}

TEST(TpBounds, InfinitiesClampAndNanThrows)
{
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(db::tpBoundMax(inf).hundredths(), 9000000000000000);
    EXPECT_EQ(db::tpBoundMin(-inf).hundredths(), -9000000000000000);
    EXPECT_THROW(db::tpBoundMin(std::nan("")), FatalError);
    EXPECT_THROW(db::tpBoundMax(std::nan("")), FatalError);
}

TEST(TpBounds, RangeQueryAgreesWithDoubleComparison)
{
    // End to end: converting a double range at the boundary must
    // select exactly the records a double comparison would.
    const db::InstructionDatabase &db = nineDb();
    for (double lo : {0.25, 0.33, 0.5, 1.0, 3.07}) {
        db::Query q;
        q.tp_min = db::tpBoundMin(lo);
        std::vector<uint32_t> expected;
        for (uint32_t row = 0;
             row < static_cast<uint32_t>(db.numRecords()); ++row)
            if (db.record(row).tpMeasured().toDouble() >= lo)
                expected.push_back(row);
        EXPECT_EQ(db.search(q), expected) << "lo=" << lo;
    }
}

// ---------------------------------------------------------------------
// Cross-generation analytics: executor scans + name merge.
// ---------------------------------------------------------------------

TEST(Analytics, ChangedSetMatchesHandBuiltDiff)
{
    auto catalog = nineCatalog();
    db::AnalyticsQuery q;
    q.from = uarch::UArch::Nehalem;
    q.to = uarch::UArch::Skylake;
    q.direction = db::AnalyticsQuery::Direction::Changed;
    auto result = catalog->analytics(q);

    // Reference: name-keyed maps over the monolith's two shards.
    const db::InstructionDatabase &db = nineDb();
    std::map<std::string_view, uint32_t> from_rows, to_rows;
    for (uint32_t row = 0;
         row < static_cast<uint32_t>(db.numRecords()); ++row) {
        db::RecordView r = db.record(row);
        if (r.arch() == q.from)
            from_rows[r.name()] = row;
        if (r.arch() == q.to)
            to_rows[r.name()] = row;
    }
    size_t common = 0, changed = 0;
    for (const auto &[name, from_row] : from_rows) {
        auto it = to_rows.find(name);
        if (it == to_rows.end())
            continue;
        ++common;
        db::RecordView a = db.record(from_row);
        db::RecordView b = db.record(it->second);
        if (a.tpMeasured() != b.tpMeasured() ||
            a.maxLatency() != b.maxLatency())
            ++changed;
    }
    EXPECT_EQ(result.common, common);
    EXPECT_EQ(result.matched, changed);
    EXPECT_EQ(result.entries.size(), changed);
    for (const auto &entry : result.entries) {
        EXPECT_EQ(entry.from.name(), entry.to.name());
        EXPECT_TRUE(entry.tp_changed || entry.lat_changed);
        EXPECT_EQ(entry.tp_changed, entry.from.tpMeasured() !=
                                        entry.to.tpMeasured());
        EXPECT_EQ(entry.lat_changed, entry.from.maxLatency() !=
                                         entry.to.maxLatency());
    }
}

TEST(Analytics, DirectionsPartitionTheChangedSet)
{
    auto catalog = nineCatalog();
    db::AnalyticsQuery q;
    q.from = uarch::UArch::Nehalem;
    q.to = uarch::UArch::Skylake;
    q.metric = db::AnalyticsQuery::Metric::Tp;

    q.direction = db::AnalyticsQuery::Direction::Changed;
    auto changed = catalog->analytics(q);
    q.direction = db::AnalyticsQuery::Direction::Regressed;
    auto regressed = catalog->analytics(q);
    q.direction = db::AnalyticsQuery::Direction::Improved;
    auto improved = catalog->analytics(q);

    EXPECT_EQ(changed.matched,
              regressed.matched + improved.matched);
    for (const auto &entry : regressed.entries)
        EXPECT_GT(entry.to.tpMeasured(), entry.from.tpMeasured());
    for (const auto &entry : improved.entries)
        EXPECT_LT(entry.to.tpMeasured(), entry.from.tpMeasured());
}

TEST(Analytics, FilterAndLimitApply)
{
    auto catalog = nineCatalog();
    db::AnalyticsQuery q;
    q.from = uarch::UArch::Nehalem;
    q.to = uarch::UArch::Skylake;
    q.direction = db::AnalyticsQuery::Direction::Changed;
    auto unfiltered = catalog->analytics(q);
    ASSERT_GT(unfiltered.entries.size(), 1u);

    q.filter.mnemonic = "ADD";
    auto filtered = catalog->analytics(q);
    EXPECT_LT(filtered.common, unfiltered.common);
    for (const auto &entry : filtered.entries)
        EXPECT_EQ(entry.from.mnemonic(), "ADD");

    q.filter.mnemonic.reset();
    q.limit = 1;
    auto capped = catalog->analytics(q);
    EXPECT_EQ(capped.entries.size(), 1u);
    // Counts stay exact even when entry reporting is capped.
    EXPECT_EQ(capped.matched, unfiltered.matched);
    EXPECT_EQ(capped.common, unfiltered.common);
}

} // namespace
} // namespace uops::test
