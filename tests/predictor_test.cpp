/**
 * @file
 * Tests for the performance-prediction tool (the paper's concluding
 * deliverable): predictions from measured characterization data,
 * validated against the simulated hardware — including the cases the
 * paper shows IACA getting wrong (flag and memory dependencies).
 */

#include <gtest/gtest.h>

#include "core/characterize.h"
#include "core/predictor.h"
#include "test_util.h"

namespace uops::test {
namespace {

using core::Characterizer;
using core::CharacterizationSet;
using core::PerformancePredictor;
using uarch::UArch;

const CharacterizationSet &
predictorSet(UArch arch)
{
    static std::map<UArch, std::unique_ptr<CharacterizationSet>> cache;
    auto it = cache.find(arch);
    if (it == cache.end()) {
        Characterizer::Options opts;
        static const std::set<std::string> names = {
            "ADD_R64_R64", "ADD_R64_I32", "IMUL_R64_R64", "CMC",
            "MOV_R64_M64", "MOV_M64_R64", "PSHUFD_X_X_I8", "ADDPS_X_X",
            "MULPS_X_X",   "DIVPS_X_X",   "NOP",
        };
        opts.filter = [](const isa::InstrVariant &v) {
            return names.count(v.name()) > 0;
        };
        auto set = std::make_unique<CharacterizationSet>(
            Characterizer(defaultDb(), arch, opts).run());
        it = cache.emplace(arch, std::move(set)).first;
    }
    return *it->second;
}

double
simulated(UArch arch, const std::string &listing)
{
    sim::MeasurementHarness harness(timingDb(arch));
    return harness.measure(asm_(listing)).cycles;
}

TEST(Predictor, PortBoundKernel)
{
    PerformancePredictor pred(predictorSet(UArch::Skylake));
    // Four independent ADDs: port bound = 1 cycle on 4 ALU ports.
    auto kernel = asm_("ADD RAX, R8\nADD RBX, R8\n"
                       "ADD RCX, R8\nADD RDX, R8");
    auto p = pred.analyzeLoop(kernel);
    EXPECT_NEAR(p.block_throughput, 1.0, 0.05);
    EXPECT_EQ(p.bottleneck, "ports");
    EXPECT_NEAR(simulated(UArch::Skylake,
                          "ADD RAX, R8\nADD RBX, R8\n"
                          "ADD RCX, R8\nADD RDX, R8"),
                p.block_throughput, 0.15);
}

TEST(Predictor, DependencyBoundKernel)
{
    PerformancePredictor pred(predictorSet(UArch::Skylake));
    // IMUL chain: 3-cycle loop-carried dependency.
    auto kernel = asm_("IMUL RAX, RBX");
    auto p = pred.analyzeLoop(kernel);
    EXPECT_NEAR(p.block_throughput, 3.0, 0.1);
    EXPECT_EQ(p.bottleneck, "dependencies");
    EXPECT_NEAR(simulated(UArch::Skylake, "IMUL RAX, RBX"),
                p.block_throughput, 0.2);
}

TEST(Predictor, FlagDependenciesRespected)
{
    // CMC: IACA 3.0 reports 0.25 (Section 7.2); our predictor uses the
    // measured flag->flag latency and gets 1.0, like the hardware.
    PerformancePredictor pred(predictorSet(UArch::Skylake));
    auto p = pred.analyzeLoop(asm_("CMC"));
    EXPECT_NEAR(p.block_throughput, 1.0, 0.1);
    EXPECT_NEAR(simulated(UArch::Skylake, "CMC"), 1.0, 0.05);
}

TEST(Predictor, MemoryDependenciesRespected)
{
    // Store + dependent load: IACA says 1 cycle (ignores memory
    // dependencies); hardware is a ~5-6 cycle round trip. The
    // predictor tracks memory locations.
    PerformancePredictor pred(predictorSet(UArch::Skylake));
    auto kernel = asm_("MOV [RAX], RBX\nMOV RBX, [RAX]");
    auto p = pred.analyzeLoop(kernel);
    double hw = simulated(UArch::Skylake, "MOV [RAX], RBX\n"
                                          "MOV RBX, [RAX]");
    EXPECT_GT(p.block_throughput, 3.5);
    EXPECT_NEAR(p.block_throughput, hw, 1.5);
}

TEST(Predictor, IndependentMemoryLocationsDoNotChain)
{
    PerformancePredictor pred(predictorSet(UArch::Skylake));
    auto kernel = asm_("MOV [RAX], RBX\nMOV RCX, [RAX+64]");
    auto p = pred.analyzeLoop(kernel);
    EXPECT_LT(p.block_throughput, 1.6); // no dependency, port bound
}

TEST(Predictor, FrontEndBound)
{
    // NOPs use no ports; the 4-wide front end is the limit.
    PerformancePredictor pred(predictorSet(UArch::Skylake));
    isa::Kernel kernel;
    for (int i = 0; i < 8; ++i) {
        auto nop = asm_("NOP");
        kernel.push_back(nop[0]);
    }
    auto p = pred.analyzeLoop(kernel);
    // NOP reports 0 port µops -> front-end bound 0; acceptable lower
    // bound behaviour: predicted <= simulated.
    double hw = simulated(UArch::Skylake,
                          "NOP\nNOP\nNOP\nNOP\nNOP\nNOP\nNOP\nNOP");
    EXPECT_LE(p.block_throughput, hw + 0.1);
}

TEST(Predictor, DividerBound)
{
    PerformancePredictor pred(predictorSet(UArch::Haswell));
    auto kernel = asm_("DIVPS XMM1, XMM4\nDIVPS XMM2, XMM4");
    auto p = pred.analyzeLoop(kernel);
    EXPECT_EQ(p.bottleneck, "divider");
    double hw = simulated(UArch::Haswell,
                          "DIVPS XMM1, XMM4\nDIVPS XMM2, XMM4");
    EXPECT_NEAR(p.block_throughput, hw, 3.0);
}

TEST(Predictor, MixedKernelCloseToSimulation)
{
    PerformancePredictor pred(predictorSet(UArch::Skylake));
    std::string listing = "MOV RBX, [RSI]\n"
                          "IMUL RBX, RBX\n"
                          "ADD RAX, RBX\n"
                          "ADDPS XMM1, XMM4\n"
                          "MULPS XMM2, XMM4\n"
                          "PSHUFD XMM3, XMM2, 0";
    auto p = pred.analyzeLoop(asm_(listing));
    double hw = simulated(UArch::Skylake, listing);
    // Static prediction within ~25% of the cycle-level simulation.
    EXPECT_NEAR(p.block_throughput, hw, 0.25 * hw + 0.3);
}

TEST(Predictor, WorksOnAllUArchesIncludingPostIaca)
{
    // Unlike IACA, the predictor supports Kaby Lake and Coffee Lake.
    for (UArch arch : {UArch::KabyLake, UArch::CoffeeLake}) {
        PerformancePredictor pred(predictorSet(arch));
        auto p = pred.analyzeLoop(asm_("ADD RAX, RBX"));
        EXPECT_NEAR(p.block_throughput, 1.0, 0.1);
    }
}

TEST(Predictor, UnknownInstructionFails)
{
    PerformancePredictor pred(predictorSet(UArch::Skylake));
    EXPECT_THROW(pred.analyzeLoop(asm_("SHLD RAX, RBX, 3")),
                 FatalError);
}

TEST(Predictor, ReportString)
{
    PerformancePredictor pred(predictorSet(UArch::Skylake));
    auto p = pred.analyzeLoop(asm_("ADD RAX, RBX"));
    std::string s = p.toString();
    EXPECT_NE(s.find("block throughput"), std::string::npos);
    EXPECT_NE(s.find("bottleneck"), std::string::npos);
}

} // namespace
} // namespace uops::test
