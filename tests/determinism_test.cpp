/**
 * @file
 * Golden determinism suite for the measurement hot path.
 *
 * The PR-2 optimizations (decoded-µop templates with logical
 * unrolling, the reusable pipeline scratch arena, idle-cycle clock
 * skipping, and the measurement memo-cache) are pure performance
 * work: every one of them must be invisible in the results. This
 * suite pins that contract down:
 *
 *  - a MeasurementCache hit is bit-identical to the cache miss that
 *    populated it, and to an uncached harness;
 *  - runBatchSweep XML is byte-identical with the memo-cache on and
 *    off, and across 1 and 4 worker threads;
 *  - logical unrolling over a DecodedKernel reproduces the
 *    materialized n-copy kernel exactly (counters and snapshots),
 *    including macro-fusion across copy boundaries;
 *  - a Pipeline reusing its scratch arena across runs reproduces a
 *    fresh pipeline's results run for run;
 *  - idle-cycle skipping is cycle-exact against plain stepping.
 */

#include <gtest/gtest.h>

#include "core/batch.h"
#include "sim/measurement_cache.h"
#include "support/thread_pool.h"
#include "test_util.h"

namespace uops::test {
namespace {

using uarch::UArch;

void
expectCountersEqual(const sim::PerfCounters &a,
                    const sim::PerfCounters &b, const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    for (int p = 0; p < sim::kMaxPorts; ++p)
        EXPECT_EQ(a.port_uops[static_cast<size_t>(p)],
                  b.port_uops[static_cast<size_t>(p)])
            << what << " port " << p;
    EXPECT_EQ(a.uops_issued, b.uops_issued) << what;
    EXPECT_EQ(a.uops_eliminated, b.uops_eliminated) << what;
    EXPECT_EQ(a.instrs_retired, b.instrs_retired) << what;
}

void
expectRunsEqual(const sim::RunResult &a, const sim::RunResult &b,
                const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    expectCountersEqual(a.final, b.final, what + " final");
    ASSERT_EQ(a.snapshots.size(), b.snapshots.size()) << what;
    for (size_t i = 0; i < a.snapshots.size(); ++i)
        expectCountersEqual(a.snapshots[i], b.snapshots[i],
                            what + " snapshot " + std::to_string(i));
}

/** Bit-exact Measurement comparison (doubles compared with ==). */
void
expectMeasurementsIdentical(const sim::Measurement &a,
                            const sim::Measurement &b,
                            const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    for (int p = 0; p < sim::kMaxPorts; ++p)
        EXPECT_EQ(a.port_uops[static_cast<size_t>(p)],
                  b.port_uops[static_cast<size_t>(p)])
            << what << " port " << p;
    EXPECT_EQ(a.uops_issued, b.uops_issued) << what;
    EXPECT_EQ(a.uops_eliminated, b.uops_eliminated) << what;
}

// ---------------------------------------------------------------------
// Measurement memo-cache.
// ---------------------------------------------------------------------

TEST(Determinism, CacheHitIsBitIdenticalToMissAndToUncached)
{
    const auto &tdb = timingDb(UArch::Skylake);
    const std::vector<std::string> bodies = {
        "ADD RAX, RBX",
        "IMUL RAX, RBX\nPSHUFD XMM1, XMM2, 0",
        "DIV RBX",
        "MOV [RAX], RBX\nMOV RCX, [RAX]",
        "CMP RAX, RBX\nJZ 1",
    };

    sim::MeasurementCache cache;
    sim::MeasurementHarness cached(tdb);
    cached.setCache(&cache);
    sim::MeasurementHarness uncached(tdb);

    for (const std::string &listing : bodies) {
        auto body = asm_(listing);
        sim::Measurement miss = cached.measure(body);  // populates
        sim::Measurement hit = cached.measure(body);   // serves
        sim::Measurement plain = uncached.measure(body);
        expectMeasurementsIdentical(miss, hit, listing + " hit/miss");
        expectMeasurementsIdentical(plain, miss,
                                    listing + " cached/uncached");
    }
    EXPECT_EQ(cache.size(), bodies.size());
    EXPECT_GE(cache.hits(), bodies.size());
}

TEST(Determinism, FingerprintSeparatesKernelsAndOptions)
{
    sim::HarnessOptions options;
    auto a = sim::MeasurementCache::fingerprint(asm_("ADD RAX, RBX"),
                                                options);
    auto b = sim::MeasurementCache::fingerprint(asm_("ADD RAX, RCX"),
                                                options);
    auto c = sim::MeasurementCache::fingerprint(asm_("ADD RAX, RBX\n"
                                                     "ADD RAX, RBX"),
                                                options);
    options.unroll_large = 60;
    auto d = sim::MeasurementCache::fingerprint(asm_("ADD RAX, RBX"),
                                                options);
    EXPECT_NE(a, b); // operands differ
    EXPECT_NE(a, c); // lengths differ
    EXPECT_NE(a, d); // harness options differ
    EXPECT_EQ(a, sim::MeasurementCache::fingerprint(
                     asm_("ADD RAX, RBX"), sim::HarnessOptions{}));
}

TEST(Determinism, SharedCacheIsThreadSafeAndExact)
{
    const auto &tdb = timingDb(UArch::Haswell);
    sim::MeasurementCache cache(4);
    sim::MeasurementHarness reference(tdb);
    auto body = asm_("IMUL RAX, RBX\nADD RCX, RDX");
    sim::Measurement expected = reference.measure(body);

    ThreadPool pool(4);
    std::vector<sim::Measurement> results(64);
    pool.parallelFor(results.size(), [&](size_t i, size_t) {
        // One harness per task: harnesses are single-threaded, the
        // cache is the shared object under test.
        sim::MeasurementHarness harness(tdb);
        harness.setCache(&cache);
        results[i] = harness.measure(body);
    });
    for (size_t i = 0; i < results.size(); ++i)
        expectMeasurementsIdentical(expected, results[i],
                                    "task " + std::to_string(i));
    EXPECT_EQ(cache.size(), 1u);
}

// ---------------------------------------------------------------------
// Batch XML byte-stability.
// ---------------------------------------------------------------------

TEST(Determinism, BatchXmlByteIdenticalAcrossCacheAndThreads)
{
    auto options = [](size_t threads, bool share) {
        core::BatchOptions o;
        o.num_threads = threads;
        o.share_measurements = share;
        o.characterizer.filter = [](const isa::InstrVariant &v) {
            const std::string &m = v.mnemonic();
            return m == "ADD" || m == "PXOR" || m == "DIV" ||
                   m == "MOVAPS" || m == "VPXOR";
        };
        return o;
    };
    const std::vector<UArch> arches = {UArch::Nehalem, UArch::Skylake};

    std::string baseline =
        core::runBatchSweep(defaultDb(), arches, options(1, false))
            .toXmlString();
    EXPECT_EQ(baseline,
              core::runBatchSweep(defaultDb(), arches, options(1, true))
                  .toXmlString())
        << "memo-cache changed the report";
    EXPECT_EQ(baseline,
              core::runBatchSweep(defaultDb(), arches, options(4, true))
                  .toXmlString())
        << "threading changed the report";
}

// ---------------------------------------------------------------------
// Logical unrolling and the scratch arena.
// ---------------------------------------------------------------------

/** Bodies covering the rename/dispatch special cases: ALU chains,
 *  fusion (including across copy boundaries), zero idioms and move
 *  elimination, vectors with bypass, divider, memory round trips,
 *  serializing instructions. */
const char *const kUnrollBodies[] = {
    "ADD RAX, RBX\nIMUL RCX, RAX",
    "CMP RAX, RBX\nJZ 1",          // fuses, also across copies
    "JZ 1\nCMP RAX, RBX",          // wrap pair (CMP, JZ) fuses
    "XOR RAX, RAX\nMOV RBX, RCX\nNOP",
    "PSHUFD XMM1, XMM2, 0\nPADDD XMM1, XMM3\nMULPS XMM4, XMM1",
    "DIV RBX\nADD RCX, RDX",
    "MOV [RAX], RBX\nMOV RCX, [RAX]\nMOVSX RDX, CL",
    "IMUL RAX, RBX\nLFENCE\nIMUL RCX, RBX",
};

TEST(Determinism, LogicalUnrollMatchesMaterializedKernel)
{
    for (UArch arch : {UArch::Nehalem, UArch::Skylake}) {
        const auto &tdb = timingDb(arch);
        sim::Pipeline pipeline(tdb);
        auto prologue = asm_("MOV RAX, 7\nCPUID\nRDTSC\nCPUID");
        auto epilogue = asm_("CPUID\nRDTSC\nCPUID\nADD RAX, RBX");

        for (const char *listing : kUnrollBodies) {
            auto body = asm_(listing);
            for (int n : {1, 3, 10}) {
                isa::Kernel flat;
                flat.insert(flat.end(), prologue.begin(),
                            prologue.end());
                for (int i = 0; i < n; ++i)
                    flat.insert(flat.end(), body.begin(), body.end());
                flat.insert(flat.end(), epilogue.begin(),
                            epilogue.end());
                std::vector<size_t> markers = {2, flat.size() - 2};

                sim::DecodedKernel decoded(tdb, prologue, body,
                                           epilogue);
                expectRunsEqual(
                    pipeline.run(flat, markers),
                    pipeline.run(decoded, n, markers),
                    std::string(listing) + " n=" + std::to_string(n));
            }
        }
    }
}

TEST(Determinism, ScratchArenaReuseReproducesFreshPipeline)
{
    const auto &tdb = timingDb(UArch::Skylake);
    sim::Pipeline reused(tdb);
    // Interleave dissimilar kernels so stale scratch state from one
    // run would corrupt the next if the reset were incomplete.
    for (int round = 0; round < 3; ++round) {
        for (const char *listing : kUnrollBodies) {
            auto kernel = asm_(listing);
            sim::Pipeline fresh(tdb);
            expectRunsEqual(fresh.run(kernel), reused.run(kernel),
                            listing);
        }
    }
}

TEST(Determinism, IdleCycleSkippingIsCycleExact)
{
    sim::SimOptions stepping;
    stepping.skip_idle = false;
    for (UArch arch : {UArch::Nehalem, UArch::Skylake}) {
        const auto &tdb = timingDb(arch);
        sim::Pipeline fast(tdb);
        sim::Pipeline slow(tdb, stepping);
        for (const char *listing : kUnrollBodies) {
            // Long dependent chains maximize idle stretches.
            auto body = asm_(listing);
            isa::Kernel kernel;
            for (int i = 0; i < 40; ++i)
                kernel.insert(kernel.end(), body.begin(), body.end());
            expectRunsEqual(slow.run(kernel), fast.run(kernel),
                            listing);
        }
    }
}

} // namespace
} // namespace uops::test
