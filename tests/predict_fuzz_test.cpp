/**
 * @file
 * Corpus-driven fuzz/property harness for the untrusted input path:
 * random and mutated bytes, near-miss assembler, and hostile query
 * strings through isa::assemble, the HTTP head parser, and full
 * /predict request handling.
 *
 * Properties checked on every input:
 *  - no crash, hang, or UB (the suite runs under ASan+UBSan in CI);
 *  - the parsers throw FatalError — never anything else — on
 *    malformed input;
 *  - every /predict response is 200 or a structured 4xx JSON error
 *    body; a malformed kernel can never surface as a 5xx.
 *
 * Deterministic by construction (seeded SplitMix64, fixed corpus).
 * UOPS_PREDICT_FUZZ_ITERS scales the iteration count: the default
 * keeps local ctest fast; CI's sanitizer job raises it.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/catalog.h"
#include "server/http.h"
#include "server/service.h"
#include "support/rng.h"
#include "test_util.h"

namespace uops::test {
namespace {

using server::HttpRequest;
using server::HttpResponse;

int
iterations()
{
    if (const char *env = std::getenv("UOPS_PREDICT_FUZZ_ITERS"))
        return std::max(1, std::atoi(env));
    return 300;
}

/** Seed assembler lines the mutator starts from. */
const std::vector<std::string> &
seedLines()
{
    static const std::vector<std::string> lines = {
        "ADD RAX, RBX",
        "IMUL RCX, RAX",
        "MOV RAX, [RBX+8]",
        "MOV [RBX+64], RAX",
        "DIV EBX",
        "CMP RAX, 5",
        "JNZ 0",
        "XOR EAX, EAX",
        "MOVAPS XMM0, XMM1",
        "ADD RAX, 127",
        "NOP",
    };
    return lines;
}

/** Near-miss / hostile fragments spliced in by the mutator. */
const std::vector<std::string> &
hostileTokens()
{
    static const std::vector<std::string> tokens = {
        "[",       "]",     "+",        ",",    ",,",
        "[RAX",    "RAX]",  "[+]",      "#",    ";",
        "BOGUS",   "ADD",   "RAX",      "XMM9", "R16",
        "-1",      "0x10",  "99999999999999999999",
        "9999999", "-9999999",
        "ADD RAX", "ADD RAX,", "ADD , RBX",
        "\t",      "\r",    "\x01",     "\xff", "\0",
    };
    return tokens;
}

std::string
randomBytes(Rng &rng, size_t max_len)
{
    std::string out;
    size_t len = rng.nextBelow(max_len + 1);
    out.reserve(len);
    for (size_t i = 0; i < len; ++i)
        out += static_cast<char>(rng.nextBelow(256));
    return out;
}

/** One mutated listing: seed lines joined, then corrupted. */
std::string
mutatedListing(Rng &rng)
{
    const auto &seeds = seedLines();
    std::string listing;
    size_t lines = 1 + rng.nextBelow(4);
    for (size_t i = 0; i < lines; ++i) {
        if (i > 0)
            listing += rng.nextBool(0.5) ? '\n' : ';';
        listing += seeds[rng.nextBelow(seeds.size())];
    }
    size_t mutations = rng.nextBelow(5);
    for (size_t i = 0; i < mutations; ++i) {
        switch (rng.nextBelow(5)) {
          case 0:   // flip one byte
            if (!listing.empty())
                listing[rng.nextBelow(listing.size())] =
                    static_cast<char>(rng.nextBelow(256));
            break;
          case 1: { // splice a hostile token
            const auto &tokens = hostileTokens();
            listing.insert(rng.nextBelow(listing.size() + 1),
                           tokens[rng.nextBelow(tokens.size())]);
            break;
          }
          case 2:   // truncate
            listing.resize(rng.nextBelow(listing.size() + 1));
            break;
          case 3: { // duplicate a chunk
            if (!listing.empty()) {
                size_t from = rng.nextBelow(listing.size());
                size_t len = rng.nextBelow(listing.size() - from + 1);
                listing.insert(rng.nextBelow(listing.size() + 1),
                               listing.substr(from, len));
            }
            break;
          }
          default:  // delete one byte
            if (!listing.empty())
                listing.erase(rng.nextBelow(listing.size()), 1);
            break;
        }
    }
    return listing;
}

/** A small, cheap catalog so the service has a real generation. */
std::shared_ptr<const db::DatabaseCatalog>
fuzzCatalog()
{
    static const auto catalog = [] {
        core::BatchOptions options;
        options.num_threads = 2;
        options.characterizer.filter =
            [](const isa::InstrVariant &v) {
                return v.mnemonic() == "ADD" || v.mnemonic() == "XOR";
            };
        return db::runCatalogSweep(defaultDb(),
                                   {uarch::UArch::Skylake}, options,
                                   nullptr);
    }();
    return catalog;
}

std::unique_ptr<server::QueryService>
fuzzService()
{
    server::QueryService::Options options;
    // Tight admission keeps the worst mutated-but-valid kernel cheap.
    options.admission.max_instructions = 16;
    options.admission.max_listing_bytes = 4096;
    options.engine.num_threads = 2;
    options.engine.predict.cycle_budget = 2'000'000;
    return std::make_unique<server::QueryService>(
        fuzzCatalog(), defaultDb(), options);
}

/** Every /predict response: success or structured 4xx, never 5xx. */
void
checkPredictResponse(const HttpResponse &response,
                     const std::string &input)
{
    ASSERT_TRUE(response.status == 200 ||
                (response.status >= 400 && response.status < 500))
        << "status " << response.status << " for input: " << input
        << "\nbody: " << response.body;
    ASSERT_FALSE(response.body.empty()) << input;
    ASSERT_EQ(response.body.front(), '{') << response.body;
    if (response.status >= 400) {
        EXPECT_NE(response.body.find("\"error\":"),
                  std::string::npos)
            << response.body;
        EXPECT_NE(response.body.find("\"status\":"),
                  std::string::npos)
            << response.body;
    }
}

// ---------------------------------------------------------------------
// isa::assemble on hostile input: FatalError or a kernel, nothing
// else.
// ---------------------------------------------------------------------

TEST(PredictFuzz, AssemblerThrowsOnlyFatalErrors)
{
    Rng rng(0xF0220001ULL);
    int iters = iterations();
    for (int i = 0; i < iters; ++i) {
        std::string listing = (i % 3 == 0)
                                  ? randomBytes(rng, 256)
                                  : mutatedListing(rng);
        try {
            (void)isa::assemble(defaultDb(), listing);
        } catch (const FatalError &) {
            // Expected for malformed input.
        }
        // Any other exception type escapes and fails the test.
    }
}

// ---------------------------------------------------------------------
// HTTP head parsing on random bytes.
// ---------------------------------------------------------------------

TEST(PredictFuzz, RequestHeadParserThrowsOnlyFatalErrors)
{
    Rng rng(0xF0220002ULL);
    int iters = iterations();
    for (int i = 0; i < iters; ++i) {
        std::string head = randomBytes(rng, 200);
        if (rng.nextBool(0.5))
            head = "GET /predict?uarch=" + randomBytes(rng, 40) +
                   " HTTP/1.1\r\nHost: x";
        try {
            (void)server::parseRequestHead(head);
        } catch (const FatalError &) {
        }
        try {
            (void)server::percentDecode(randomBytes(rng, 64));
        } catch (const FatalError &) {
        }
    }
}

// ---------------------------------------------------------------------
// Full /predict request handling.
// ---------------------------------------------------------------------

TEST(PredictFuzz, PredictNeverCrashesAndMapsMalformedInputTo4xx)
{
    auto service = fuzzService();
    Rng rng(0xF0220003ULL);
    const char *uarches[] = {"SKL", "NHM", "HSW", "BDW", "bogus", ""};
    int iters = iterations();
    for (int i = 0; i < iters; ++i) {
        std::string listing = (i % 4 == 0)
                                  ? randomBytes(rng, 512)
                                  : mutatedListing(rng);
        HttpRequest request;
        request.path = "/predict";
        std::string arch =
            uarches[rng.nextBelow(std::size(uarches))];
        if (!arch.empty() || rng.nextBool(0.5))
            request.query["uarch"] = arch;
        if (rng.nextBool(0.7)) {
            request.method = "POST";
            request.target = "/predict";
            request.body = listing;
        } else {
            request.method = "GET";
            request.target = "/predict?uarch=" + arch;
            request.query["asm"] = listing;
        }
        HttpResponse response = service->handle(request);
        checkPredictResponse(response, listing);
    }
}

TEST(PredictFuzz, OversizedKernelsGetStructured413)
{
    auto service = fuzzService();
    // Instruction-count bound.
    std::string long_kernel;
    for (int i = 0; i < 64; ++i)
        long_kernel += "ADD RAX, RBX\n";
    HttpRequest request;
    request.method = "POST";
    request.path = "/predict";
    request.target = "/predict?uarch=SKL";
    request.query["uarch"] = "SKL";
    request.body = long_kernel;
    HttpResponse response = service->handle(request);
    EXPECT_EQ(response.status, 413) << response.body;
    EXPECT_NE(response.body.find("\"rejected_by\":\"admission\""),
              std::string::npos)
        << response.body;
    EXPECT_NE(response.body.find("\"max_instructions\":16"),
              std::string::npos)
        << response.body;

    // Byte-size bound: an enormous listing is rejected before any
    // parsing happens.
    request.body = std::string(1 << 20, 'A');
    response = service->handle(request);
    EXPECT_EQ(response.status, 413) << response.status;
    EXPECT_NE(response.body.find("\"max_listing_bytes\":"),
              std::string::npos)
        << response.body;
}

TEST(PredictFuzz, HugeDisplacementsAreRejectedNotTruncated)
{
    auto service = fuzzService();
    // Displacements beyond the accepted range must be a clean 400 —
    // historically a long->int cast silently truncated them, which
    // made two distinct kernels alias one memory tag.
    for (const char *disp :
         {"99999999999999999999", "4294967297", "2000000", "-2"}) {
        HttpRequest request;
        request.method = "POST";
        request.path = "/predict";
        request.target = "/predict?uarch=SKL";
        request.query["uarch"] = "SKL";
        request.body = std::string("MOV RAX, [RBX+") + disp + "]";
        HttpResponse response = service->handle(request);
        EXPECT_EQ(response.status, 400)
            << disp << ": " << response.body;
    }
}

} // namespace
} // namespace uops::test
