/**
 * @file
 * Unit tests for the cycle-level pipeline simulator: dependency
 * chains, port throughput, renaming, eliminations, memory, divider,
 * flags, and the SSE/AVX transition model.
 */

#include <gtest/gtest.h>

#include "test_util.h"

namespace uops::test {
namespace {

using uarch::UArch;

// ---------------------------------------------------------------------
// Latency through dependency chains.
// ---------------------------------------------------------------------

TEST(SimLatency, AddChainIsOneCyclePerInstruction)
{
    // ADD RAX, RBX is a read-modify-write on RAX: a chain.
    auto m = measure(UArch::Skylake, "ADD RAX, RBX");
    EXPECT_NEAR(m.cycles, 1.0, 0.05);
}

TEST(SimLatency, MovsxChainIsOneCyclePerInstruction)
{
    // MOVSX RAX<-AX depends on the previous write of RAX.
    auto m = measure(UArch::Skylake, "MOVSX RAX, AX");
    EXPECT_NEAR(m.cycles, 1.0, 0.05);
}

TEST(SimLatency, ImulChainIsThreeCycles)
{
    auto m = measure(UArch::Haswell, "IMUL RAX, RAX");
    EXPECT_NEAR(m.cycles, 3.0, 0.05);
}

TEST(SimLatency, LoadChainPointerChase)
{
    // MOV RAX, [RAX]: classic pointer chase at L1 load latency.
    auto m = measure(UArch::Skylake, "MOV RAX, [RAX]");
    EXPECT_NEAR(m.cycles, 4.0, 0.05);
    auto m_snb = measure(UArch::SandyBridge, "MOV RAX, [RAX]");
    EXPECT_NEAR(m_snb.cycles, 5.0, 0.05);
}

TEST(SimLatency, FpAddChain)
{
    auto m_hsw = measure(UArch::Haswell, "ADDPS XMM1, XMM2\n"
                                         "ADDPS XMM1, XMM3");
    EXPECT_NEAR(m_hsw.cycles, 6.0, 0.1); // 2 chained 3-cycle adds
    auto m_skl = measure(UArch::Skylake, "ADDPS XMM1, XMM2");
    EXPECT_NEAR(m_skl.cycles, 4.0, 0.05);
}

TEST(SimLatency, IndependentAddsAreNotChained)
{
    // Different destination registers: no dependency, 4 per cycle on
    // the 4 ALU ports of Skylake.
    auto m = measure(UArch::Skylake, "ADD RAX, R8\n"
                                     "ADD RBX, R8\n"
                                     "ADD RCX, R8\n"
                                     "ADD RDX, R8");
    EXPECT_NEAR(m.cycles, 1.0, 0.1); // 4 instructions / 4 ports
}

// ---------------------------------------------------------------------
// Throughput and port usage counters.
// ---------------------------------------------------------------------

TEST(SimThroughput, AluThroughputMatchesPortCount)
{
    // 8 independent ADDs per body: Nehalem has 3 ALU ports.
    std::string body;
    const char *regs[] = {"RAX", "RBX", "RCX", "RDX",
                          "RSI", "RDI", "R8", "R9"};
    for (const char *r : regs)
        body += std::string("ADD ") + r + ", R10\n";
    auto m_nhm = measure(UArch::Nehalem, body);
    EXPECT_NEAR(m_nhm.cycles / 8.0, 1.0 / 3.0, 0.05);
    auto m_skl = measure(UArch::Skylake, body);
    EXPECT_NEAR(m_skl.cycles / 8.0, 1.0 / 4.0, 0.05);
}

TEST(SimThroughput, PortCountersSumToUopCount)
{
    auto m = measure(UArch::Skylake, "ADD RAX, RBX");
    EXPECT_NEAR(m.totalPortUops(), 1.0, 0.05);
    auto m2 = measure(UArch::Skylake, "ADD [RBX], RAX");
    EXPECT_NEAR(m2.totalPortUops(), 4.0, 0.05); // load+alu+sta+std
}

TEST(SimThroughput, SingleAluUopBalancesOverPorts)
{
    // Repeated in isolation, a p0156 µop spreads evenly.
    auto m = measure(UArch::Skylake, "ADD RAX, R8\n"
                                     "ADD RBX, R8\n"
                                     "ADD RCX, R8\n"
                                     "ADD RDX, R8");
    EXPECT_NEAR(m.port_uops[0], 1.0, 0.15);
    EXPECT_NEAR(m.port_uops[1], 1.0, 0.15);
    EXPECT_NEAR(m.port_uops[5], 1.0, 0.15);
    EXPECT_NEAR(m.port_uops[6], 1.0, 0.15);
}

TEST(SimThroughput, ShuffleBoundToPort5OnSkylake)
{
    auto m = measure(UArch::Skylake, "PSHUFD XMM1, XMM2, 0");
    EXPECT_NEAR(m.port_uops[5], 1.0, 0.05);
    EXPECT_NEAR(m.cycles, 1.0, 0.05); // tp 1 (single port)
}

TEST(SimThroughput, DividerIsNotFullyPipelined)
{
    // Independent DIVPS: throughput dominated by divider occupancy,
    // well above 1 cycle even though it is a single µop.
    auto m = measure(UArch::Haswell, "DIVPS XMM1, XMM2\n"
                                     "DIVPS XMM3, XMM4");
    EXPECT_GT(m.cycles / 2.0, 4.0);
}

// ---------------------------------------------------------------------
// Rename-stage eliminations.
// ---------------------------------------------------------------------

TEST(SimRename, ZeroIdiomBreaksDependencyAndUsesNoPort)
{
    // XOR RAX, RAX in a chain position: on Skylake no port µops and no
    // chain (the idiom is handled at rename).
    auto m = measure(UArch::Skylake, "XOR RAX, RAX\n"
                                     "ADD RAX, RBX");
    EXPECT_NEAR(m.totalPortUops(), 1.0, 0.05); // only the ADD executes
    // Dependency broken: ADD chain through RAX is cut every iteration.
    EXPECT_LT(m.cycles, 1.01);
}

TEST(SimRename, ZeroIdiomStillExecutesOnNehalem)
{
    // Nehalem breaks the dependency but the µop still uses a port.
    auto m = measure(UArch::Nehalem, "XOR RAX, RAX");
    EXPECT_NEAR(m.totalPortUops(), 1.0, 0.05);
}

TEST(SimRename, XorDifferentRegistersIsNotAnIdiom)
{
    auto m = measure(UArch::Skylake, "XOR RAX, RBX");
    EXPECT_NEAR(m.totalPortUops(), 1.0, 0.05);
    EXPECT_NEAR(m.cycles, 1.0, 0.05); // chained on RAX
}

TEST(SimRename, PcmpgtSameRegisterBreaksDependency)
{
    // (V)PCMPGT with identical registers: dependency-breaking but
    // still executed (Section 7.3.6).
    auto m = measure(UArch::Skylake, "PCMPGTD XMM1, XMM1\n"
                                     "PADDD XMM1, XMM2");
    EXPECT_NEAR(m.totalPortUops(), 2.0, 0.05); // both execute
    EXPECT_LE(m.cycles, 1.01);                 // but no loop dependency
}

TEST(SimRename, MovEliminationIsFlaky)
{
    // A chain of dependent MOVs: roughly one third get eliminated
    // (zero latency), the rest execute with 1-cycle latency, so the
    // chain runs at about 2/3 cycles per MOV (the paper's observation
    // motivating MOVSX chains).
    auto m = measure(UArch::IvyBridge, "MOV RAX, RBX\n"
                                       "MOV RBX, RAX");
    EXPECT_GT(m.uops_eliminated, 0.1);
    EXPECT_LT(m.cycles / 2.0, 1.0);
    EXPECT_GT(m.cycles / 2.0, 0.4);
}

TEST(SimRename, NoMovEliminationOnNehalem)
{
    auto m = measure(UArch::Nehalem, "MOV RAX, RBX\n"
                                     "MOV RBX, RAX");
    EXPECT_NEAR(m.cycles / 2.0, 1.0, 0.05);
}

TEST(SimRename, NopUsesNoExecutionPort)
{
    auto m = measure(UArch::Skylake, "NOP\nNOP\nNOP\nNOP");
    EXPECT_NEAR(m.totalPortUops(), 0.0, 0.01);
    EXPECT_NEAR(m.cycles, 1.0, 0.05); // 4-wide issue bound
}

// ---------------------------------------------------------------------
// Flags and partial registers.
// ---------------------------------------------------------------------

TEST(SimFlags, FlagDependencyChains)
{
    // CMC reads and writes CF: 1-cycle chain.
    auto m = measure(UArch::Skylake, "CMC");
    EXPECT_NEAR(m.cycles, 1.0, 0.05);
}

TEST(SimFlags, IncDoesNotTouchCarry)
{
    // INC writes AZSPO but not CF; ADC reads CF. A loop of INC+ADC on
    // different registers: ADC's CF input comes from the ADC itself
    // (loop-carried through CF), INC independent.
    auto m = measure(UArch::Skylake, "INC RBX\n"
                                     "ADC RAX, RCX");
    // ADC chain: 1 cycle; INC runs in parallel.
    EXPECT_NEAR(m.cycles, 1.0, 0.1);
}

TEST(SimFlags, TestBreaksFlagDependencyForWrite)
{
    // TEST writes flags without reading them: a CMC chain interleaved
    // with TEST is cut (TEST renames CF away from the chain).
    auto m = measure(UArch::Skylake, "TEST R8, R8\n"
                                     "CMC");
    EXPECT_LE(m.cycles, 1.01);
}

TEST(SimPartialReg, NarrowWriteMergesWithOldValue)
{
    // MOV AL, BL writes the low byte: merge dependency on RAX chain.
    auto m = measure(UArch::Skylake, "ADD RAX, R9\n"
                                     "MOV AL, BL");
    // Both are on the RAX chain: about 2 cycles per iteration.
    EXPECT_GT(m.cycles, 1.9);
}

TEST(SimPartialReg, MovsxAvoidsPartialStall)
{
    // MOVSX reads the narrow part but writes the full register.
    auto m = measure(UArch::Skylake, "MOVSX RAX, AL");
    EXPECT_NEAR(m.cycles, 1.0, 0.05);
}

// ---------------------------------------------------------------------
// Memory.
// ---------------------------------------------------------------------

TEST(SimMemory, StoreToLoadForwardingRoundTrip)
{
    // The Section 5.2.4 sequence: store + dependent load.
    auto m = measure(UArch::Skylake, "MOV [RAX], RBX\n"
                                     "MOV RBX, [RAX]");
    // Round trip well above 1 cycle (IACA wrongly reports 1).
    EXPECT_GT(m.cycles, 4.0);
    EXPECT_LT(m.cycles, 10.0);
}

TEST(SimMemory, IndependentLoadsPipelined)
{
    auto m = measure(UArch::Skylake, "MOV RBX, [RAX]\n"
                                     "MOV RCX, [RAX+64]\n"
                                     "MOV RDX, [RAX+128]\n"
                                     "MOV RSI, [RAX+192]");
    // Two load ports: 4 loads take ~2 cycles.
    EXPECT_NEAR(m.cycles, 2.0, 0.2);
}

TEST(SimMemory, StoresUseStaAndStdPorts)
{
    auto m = measure(UArch::Nehalem, "MOV [RAX], RBX");
    EXPECT_NEAR(m.port_uops[3], 1.0, 0.05); // NHM store-address on p3
    EXPECT_NEAR(m.port_uops[4], 1.0, 0.05); // store-data on p4
}

// ---------------------------------------------------------------------
// Divider value dependence.
// ---------------------------------------------------------------------

TEST(SimDivider, ValueDependentLatency)
{
    using isa::DivValueClass;
    const auto &db = defaultDb();
    const auto *divps = db.byName("DIVPS_X_X");
    ASSERT_NE(divps, nullptr);

    auto chain = [&](DivValueClass cls) {
        isa::Kernel body;
        auto inst = isa::makeInstance(
            *divps, {isa::OperandValue{.reg = {isa::RegClass::Xmm, 1}},
                     isa::OperandValue{.reg = {isa::RegClass::Xmm, 2}}});
        inst.div_class = cls;
        body.push_back(inst);
        sim::MeasurementHarness harness(timingDb(UArch::Haswell));
        return harness.measure(body).cycles;
    };
    double fast = chain(DivValueClass::Fast);
    double slow = chain(DivValueClass::Slow);
    EXPECT_GT(slow, fast + 1.0);
}

// ---------------------------------------------------------------------
// SSE/AVX transitions.
// ---------------------------------------------------------------------

TEST(SimSseAvx, DirtyUpperCreatesMergeDependency)
{
    // An AVX-256 write leaves the upper state dirty; a legacy-SSE
    // instruction then carries a false output dependency (its writes
    // merge), so independent SSE adds become a chain.
    std::string mixed = "VADDPS YMM1, YMM2, YMM3\n"
                        "ADDPS XMM4, XMM5\n"
                        "ADDPS XMM4, XMM6";
    auto m = measure(UArch::Skylake, mixed);
    // The two ADDPS serialise on XMM4: >= 8 cycles per iteration.
    EXPECT_GT(m.cycles, 7.5);

    // With VZEROUPPER the false dependency disappears... but the SSE
    // adds still chain on XMM4 architecturally here, so compare a
    // truly independent pair instead:
    std::string clean = "VADDPS YMM1, YMM2, YMM3\n"
                        "VZEROUPPER\n"
                        "ADDPS XMM4, XMM5\n"
                        "ADDPS XMM7, XMM6";
    auto m2 = measure(UArch::Skylake, clean);
    EXPECT_LT(m2.cycles, 5.0);
}

// ---------------------------------------------------------------------
// Serialization markers (Algorithm 2 plumbing).
// ---------------------------------------------------------------------

TEST(SimHarness, OverheadCancellation)
{
    // The n=10/110 subtraction must cancel the serializing and
    // counter-read overhead exactly: a 1-cycle chain measures 1.0.
    sim::HarnessOptions opts;
    opts.unroll_small = 10;
    opts.unroll_large = 110;
    auto m = measure(UArch::Haswell, "ADD RAX, RBX", opts);
    EXPECT_NEAR(m.cycles, 1.0, 0.02);
}

TEST(SimHarness, NoiseAveragingConverges)
{
    sim::HarnessOptions opts;
    opts.noise_stddev = 0.3;
    opts.repetitions = 100;
    auto m = measure(UArch::Haswell, "ADD RAX, RBX", opts);
    EXPECT_NEAR(m.cycles, 1.0, 0.15);
}

} // namespace
} // namespace uops::test
