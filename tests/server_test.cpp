/**
 * @file
 * Tests for the HTTP serving layer (src/server): JSON/HTTP plumbing,
 * endpoint responses, the epoch-keyed sharded LRU response cache,
 * per-endpoint metrics, concurrent request hammering with
 * snapshot-identical responses, catalog hot-swap (generation
 * atomicity, stale-cache regression, /reload), and end-to-end socket
 * round trips against a live HttpServer on an ephemeral loopback
 * port — including swapping generations under concurrent load.
 */

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/batch.h"
#include "core/predictor.h"
#include "db/catalog.h"
#include "obs_util.h"
#include "server/blob_store.h"
#include "server/http_server.h"
#include "server/json.h"
#include "sim/block_predict.h"
#include "support/obs/log.h"
#include "support/thread_pool.h"
#include "test_util.h"

namespace uops::test {
namespace {

using server::Endpoint;
using server::HttpRequest;
using server::HttpResponse;

bool
sliceFilter(const isa::InstrVariant &v)
{
    const std::string &m = v.mnemonic();
    return m == "ADD" || m == "XOR" || m == "IMUL" || m == "DIV" ||
           m == "MOVAPS";
}

const db::InstructionDatabase &
sliceDb()
{
    static const db::InstructionDatabase *database = [] {
        core::BatchOptions options;
        options.num_threads = 2;
        options.characterizer.filter = sliceFilter;
        auto report = core::runBatchSweep(
            defaultDb(),
            {uarch::UArch::Nehalem, uarch::UArch::Skylake}, options);
        auto *built = new db::InstructionDatabase();
        built->ingest(report);
        return built;
    }();
    return *database;
}

/** The shared slice as a sharded catalog (the serving input). */
std::shared_ptr<const db::DatabaseCatalog>
sliceCatalog()
{
    static const auto catalog =
        db::DatabaseCatalog::fromMonolith(sliceDb(), 1);
    return catalog;
}

/** A visibly different generation: ADD/XOR only, Skylake only. */
std::shared_ptr<const db::DatabaseCatalog>
altCatalog()
{
    static const auto catalog = [] {
        core::BatchOptions options;
        options.num_threads = 2;
        options.characterizer.filter =
            [](const isa::InstrVariant &v) {
                return v.mnemonic() == "ADD" || v.mnemonic() == "XOR";
            };
        return db::runCatalogSweep(defaultDb(),
                                   {uarch::UArch::Skylake}, options,
                                   nullptr);
    }();
    return catalog;
}

/** Fresh service over the shared slice catalog. */
std::unique_ptr<server::QueryService>
makeService()
{
    return std::make_unique<server::QueryService>(sliceCatalog(),
                                                  defaultDb());
}

HttpRequest
get(const std::string &target)
{
    return server::parseRequestHead("GET " + target +
                                    " HTTP/1.1\r\nHost: x");
}

// ---------------------------------------------------------------------
// JSON writer.
// ---------------------------------------------------------------------

TEST(Json, WriterProducesStableDocuments)
{
    server::JsonWriter json;
    json.beginObject();
    json.member("name", "A \"quoted\"\nvalue");
    json.member("count", 3);
    json.member("ratio", 0.25);
    json.member("flag", true);
    json.key("list").beginArray();
    json.value(1).value(2);
    json.beginObject().member("x", 1).endObject();
    json.endArray();
    json.endObject();
    EXPECT_EQ(std::move(json).str(),
              "{\"name\":\"A \\\"quoted\\\"\\nvalue\",\"count\":3,"
              "\"ratio\":0.25,\"flag\":true,\"list\":[1,2,{\"x\":1}]}");
}

TEST(Json, EscapesControlCharacters)
{
    EXPECT_EQ(server::jsonEscape(std::string("a\x01"
                                             "b")),
              "a\\u0001b");
    EXPECT_EQ(server::jsonEscape("tab\there"), "tab\\there");
}

// ---------------------------------------------------------------------
// HTTP plumbing.
// ---------------------------------------------------------------------

TEST(Http, ParsesRequestLineQueryAndHeaders)
{
    HttpRequest request = server::parseRequestHead(
        "GET /search?mnemonic=ADD&tp_min=0.5&x=a%20b HTTP/1.1\r\n"
        "Host: localhost\r\nContent-Length: 7");
    EXPECT_EQ(request.method, "GET");
    EXPECT_EQ(request.path, "/search");
    EXPECT_EQ(request.query.at("mnemonic"), "ADD");
    EXPECT_EQ(request.query.at("tp_min"), "0.5");
    EXPECT_EQ(request.query.at("x"), "a b");
    ASSERT_NE(request.header("host"), nullptr);
    EXPECT_EQ(*request.header("HOST"), "localhost");
    EXPECT_EQ(server::contentLength(request), 7u);
}

TEST(Http, RejectsMalformedRequests)
{
    EXPECT_THROW(server::parseRequestHead("GARBAGE"), FatalError);
    EXPECT_THROW(server::parseRequestHead("GET /x SPDY/3"),
                 FatalError);
    EXPECT_THROW(server::percentDecode("%zz"), FatalError);
}

TEST(Http, SerializesResponsesWithLengthAndClose)
{
    HttpResponse response;
    response.body = "{\"a\":1}";
    std::string wire = server::serializeResponse(response);
    EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
    EXPECT_NE(wire.find("\r\n\r\n{\"a\":1}"), std::string::npos);

    std::string persistent = server::serializeResponse(response, true);
    EXPECT_NE(persistent.find("Connection: keep-alive\r\n"),
              std::string::npos);
    EXPECT_EQ(persistent.find("Connection: close"), std::string::npos);
}

TEST(Http, KeepAliveSemanticsPerVersionAndHeader)
{
    auto head = [](const std::string &text) {
        return server::parseRequestHead(text);
    };
    // HTTP/1.1: persistent by default, opt-out with close.
    EXPECT_TRUE(server::wantsKeepAlive(
        head("GET / HTTP/1.1\r\nHost: x")));
    EXPECT_FALSE(server::wantsKeepAlive(
        head("GET / HTTP/1.1\r\nConnection: close")));
    EXPECT_FALSE(server::wantsKeepAlive(
        head("GET / HTTP/1.1\r\nConnection: CLOSE")));
    // Connection carries a token list; "close" anywhere in it wins.
    EXPECT_FALSE(server::wantsKeepAlive(
        head("GET / HTTP/1.1\r\nConnection: TE, close")));
    EXPECT_FALSE(server::wantsKeepAlive(
        head("GET / HTTP/1.1\r\nConnection: close, TE")));
    // HTTP/1.0: close by default, opt-in with keep-alive.
    EXPECT_FALSE(server::wantsKeepAlive(
        head("GET / HTTP/1.0\r\nHost: x")));
    EXPECT_TRUE(server::wantsKeepAlive(
        head("GET / HTTP/1.0\r\nConnection: Keep-Alive")));
    EXPECT_EQ(head("GET / HTTP/1.0\r\nHost: x").minor_version, 0);
    EXPECT_EQ(head("GET / HTTP/1.1\r\nHost: x").minor_version, 1);
}

// ---------------------------------------------------------------------
// Response cache.
// ---------------------------------------------------------------------

TEST(Cache, LruEvictsLeastRecentlyUsedPerShard)
{
    server::ResponseCache cache(1, 2);
    HttpResponse response;
    response.body = "x";
    cache.put("a", 1, response);
    cache.put("b", 1, response);
    EXPECT_TRUE(cache.get("a", 1).has_value());  // refresh a
    cache.put("c", 1, response);                 // evicts b
    EXPECT_TRUE(cache.get("a", 1).has_value());
    EXPECT_FALSE(cache.get("b", 1).has_value());
    EXPECT_TRUE(cache.get("c", 1).has_value());

    auto stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.hits, 3u);
    EXPECT_EQ(stats.misses, 1u);
}

TEST(Cache, EntriesAreKeyedByEpoch)
{
    server::ResponseCache cache(4, 8);
    HttpResponse response;
    response.body = "generation one";
    cache.put("/instr/X", 1, response);
    EXPECT_TRUE(cache.get("/instr/X", 1).has_value());
    // The same target under a newer epoch is a miss: a swap can
    // never surface a response rendered from an older generation.
    EXPECT_FALSE(cache.get("/instr/X", 2).has_value());
    // The old entry is not invalidated either — in-flight requests
    // that pinned the old state still hit it.
    EXPECT_EQ(cache.get("/instr/X", 1)->body, "generation one");
}

// ---------------------------------------------------------------------
// Endpoints (router level, no sockets).
// ---------------------------------------------------------------------

TEST(Service, HealthzReportsRecordsAndUArches)
{
    auto service = makeService();
    HttpResponse response = service->handle(get("/healthz"));
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("\"status\":\"ok\""),
              std::string::npos);
    EXPECT_NE(response.body.find("\"uarches\":[\"NHM\",\"SKL\"]"),
              std::string::npos);
}

TEST(Service, InstrEndpointReturnsRecordsAndHonorsUArchParam)
{
    auto service = makeService();
    // /instr is blob-backed: the payload lives in bodyView(), shared
    // with the serving generation's blob store.
    HttpResponse all = service->handle(get("/instr/ADD_R64_R64"));
    EXPECT_EQ(all.status, 200);
    // One record per uarch.
    EXPECT_NE(all.bodyView().find("\"uarch\":\"NHM\""),
              std::string_view::npos);
    EXPECT_NE(all.bodyView().find("\"uarch\":\"SKL\""),
              std::string_view::npos);

    HttpResponse one =
        service->handle(get("/instr/ADD_R64_R64?uarch=SKL"));
    EXPECT_EQ(one.status, 200);
    EXPECT_EQ(one.bodyView().find("\"uarch\":\"NHM\""),
              std::string_view::npos);

    EXPECT_EQ(service->handle(get("/instr/NO_SUCH")).status, 404);
    EXPECT_EQ(service->handle(get("/instr")).status, 400);
}

TEST(Service, SearchEndpointFiltersAndCounts)
{
    auto service = makeService();
    HttpResponse response = service->handle(
        get("/search?uarch=SKL&mnemonic=ADD&limit=100"));
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("\"count\":"), std::string::npos);
    EXPECT_NE(response.body.find("\"mnemonic\":\"ADD\""),
              std::string::npos);
    EXPECT_EQ(response.body.find("\"mnemonic\":\"DIV\""),
              std::string::npos);

    // Port-mask query.
    HttpResponse by_ports =
        service->handle(get("/search?uarch=SKL&uses=p05&limit=3"));
    EXPECT_EQ(by_ports.status, 200);

    // Bad parameters are user errors, not 500s. strtod accepts "nan"
    // and "inf", so they reach the fixed-point bound conversion:
    // NaN must 400, infinities are legal unbounded ranges.
    EXPECT_EQ(service->handle(get("/search?tp_min=abc")).status, 400);
    EXPECT_EQ(service->handle(get("/search?uarch=XYZ")).status, 400);
    EXPECT_EQ(service->handle(get("/search?tp_min=nan")).status, 400);
    EXPECT_EQ(service->handle(get("/search?tp_max=nan")).status, 400);
    EXPECT_EQ(
        service->handle(get("/search?uarch=SKL&tp_max=inf&limit=1"))
            .status,
        200);
}

/** The "count" field of a /search or /analytics JSON body. */
size_t
jsonCount(std::string_view body, std::string_view key)
{
    std::string needle = "\"" + std::string(key) + "\":";
    size_t pos = body.find(needle);
    EXPECT_NE(pos, std::string_view::npos) << key << " in " << body;
    return std::stoul(std::string(body.substr(pos + needle.size())));
}

TEST(Service, SearchResponseIsByteIdenticalToDirectRender)
{
    // The /search hot path splices pre-rendered blob-store fragments
    // instead of re-rendering each record; the splice must be
    // byte-identical to a fresh writeRecordJson render of the same
    // result set.
    auto service = makeService();
    HttpResponse response =
        service->handle(get("/search?uarch=SKL&uses=p0&limit=50"));
    ASSERT_EQ(response.status, 200);

    db::Query query;
    query.arch = uarch::UArch::Skylake;
    query.uses_ports = uarch::portMask({0});
    query.limit = 50;
    std::vector<db::RecordView> records =
        sliceCatalog()->search(query);
    ASSERT_FALSE(records.empty());

    server::JsonWriter json;
    json.beginObject();
    json.member("count", records.size());
    json.key("results").beginArray();
    for (const db::RecordView &view : records)
        server::writeRecordJson(json, view);
    json.endArray();
    json.endObject();
    EXPECT_EQ(response.bodyView(), std::move(json).str());
}

TEST(Service, SearchCompoundPredicatesNarrowAndValidate)
{
    auto service = makeService();
    auto count = [&](const std::string &target) {
        HttpResponse response = service->handle(get(target));
        EXPECT_EQ(response.status, 200) << target;
        return jsonCount(response.bodyView(), "count");
    };

    // Each added conjunct can only narrow the result set.
    size_t base = count("/search?uarch=SKL");
    size_t ports = count("/search?uarch=SKL&uses=p0");
    size_t uops = count("/search?uarch=SKL&uses=p0&uops_max=1");
    size_t lat = count("/search?uarch=SKL&uses=p0&uops_max=1&lat_max=3");
    ASSERT_GT(base, 0u);
    EXPECT_GE(base, ports);
    EXPECT_GE(ports, uops);
    EXPECT_GE(uops, lat);

    // uses_only / uses_exact / has are accepted and consistent:
    // an exact mask is a subset of "only these ports".
    size_t exact = count("/search?uarch=SKL&uses_exact=p0");
    size_t only = count("/search?uarch=SKL&uses_only=p0");
    EXPECT_LE(exact, only);
    count("/search?uarch=SKL&has=breakers,slow");
    count("/search?uarch=SKL&uops_min=2&lat_min=1");

    // Bad operand values are user errors (400), not 500s.
    EXPECT_EQ(service->handle(get("/search?uses_only=zz")).status,
              400);
    EXPECT_EQ(service->handle(get("/search?uses_exact=qq")).status,
              400);
    EXPECT_EQ(service->handle(get("/search?uops_min=abc")).status,
              400);
    EXPECT_EQ(service->handle(get("/search?lat_max=abc")).status,
              400);
    EXPECT_EQ(service->handle(get("/search?has=bogus")).status, 400);
    EXPECT_EQ(service->handle(get("/search?limit=-1")).status, 400);
}

TEST(Service, AnalyticsEndpointValidatesParameters)
{
    auto service = makeService();
    // Missing or unknown uarches: usage error.
    EXPECT_EQ(service->handle(get("/analytics/regressions")).status,
              400);
    EXPECT_EQ(
        service->handle(get("/analytics/regressions?from=NHM"))
            .status,
        400);
    EXPECT_EQ(service
                  ->handle(get(
                      "/analytics/regressions?from=XYZ&to=SKL"))
                  .status,
              400);
    // Unknown metric / direction names.
    EXPECT_EQ(
        service
            ->handle(get("/analytics/regressions?from=NHM&to=SKL"
                         "&metric=bogus"))
            .status,
        400);
    EXPECT_EQ(
        service
            ->handle(get("/analytics/regressions?from=NHM&to=SKL"
                         "&direction=sideways"))
            .status,
        400);
}

TEST(Service, AnalyticsDirectionsPartitionChangesAndEchoParams)
{
    auto service = makeService();
    auto matched = [&](const std::string &direction) {
        HttpResponse response = service->handle(
            get("/analytics/regressions?from=NHM&to=SKL&metric=tp"
                "&direction=" +
                direction));
        EXPECT_EQ(response.status, 200);
        return jsonCount(response.bodyView(), "matched");
    };
    size_t changed = matched("changed");
    size_t regressed = matched("regressed");
    size_t improved = matched("improved");
    ASSERT_GT(changed, 0u)
        << "fixture drift: no NHM->SKL throughput movement";
    EXPECT_EQ(changed, regressed + improved);

    HttpResponse response = service->handle(
        get("/analytics/regressions?from=NHM&to=SKL&metric=latency"
            "&direction=improved&mnemonic=ADD"));
    ASSERT_EQ(response.status, 200);
    std::string_view body = response.bodyView();
    EXPECT_NE(body.find("\"from\":\"NHM\""), std::string_view::npos);
    EXPECT_NE(body.find("\"to\":\"SKL\""), std::string_view::npos);
    EXPECT_NE(body.find("\"metric\":\"latency\""),
              std::string_view::npos);
    EXPECT_NE(body.find("\"direction\":\"improved\""),
              std::string_view::npos);
}

TEST(Service, AnalyticsResponsesAreCached)
{
    auto service = makeService();
    const std::string target =
        "/analytics/regressions?from=NHM&to=SKL&direction=changed";
    HttpResponse first = service->handle(get(target));
    HttpResponse second = service->handle(get(target));
    ASSERT_EQ(first.status, 200);
    EXPECT_FALSE(first.cache_hit);
    EXPECT_TRUE(second.cache_hit);
    EXPECT_EQ(first.bodyView(), second.bodyView());
    auto metrics = service->metrics(Endpoint::Analytics);
    EXPECT_EQ(metrics.requests, 2u);
    EXPECT_EQ(metrics.cache_hits, 1u);
}

TEST(Service, DiffEndpointComparesUArches)
{
    auto service = makeService();
    HttpResponse response = service->handle(get("/diff?a=NHM&b=SKL"));
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("\"common\":"), std::string::npos);
    EXPECT_NE(response.body.find("\"changed\":"), std::string::npos);
    EXPECT_EQ(service->handle(get("/diff?a=NHM")).status, 400);
}

TEST(Service, PredictSimulatesAndAnalyzesKernels)
{
    auto service = makeService();
    HttpResponse response = service->handle(
        get("/predict?uarch=SKL&asm=ADD%20RAX,%20RBX;IMUL%20RCX,%20"
            "RAX"));
    ASSERT_EQ(response.status, 200) << response.body;

    // The headline number is the *simulated* throughput — it must
    // equal a direct sim::BlockPredictor run with the engine's
    // default options.
    sim::BlockPredictor direct(defaultDb(), uarch::UArch::Skylake);
    sim::Measurement simulated =
        direct.predict(asm_("ADD RAX, RBX\nIMUL RCX, RAX"));
    EXPECT_NE(response.body.find("\"block_throughput\":" +
                                 xmlFormatDouble(simulated.cycles) +
                                 ",\"simulation\":{"),
              std::string::npos)
        << response.body;

    // The static IACA-style analysis rides along under "analysis",
    // equal to a direct PerformancePredictor run over the same
    // reconstructed characterization set.
    auto set = sliceDb().toCharacterizationSet(uarch::UArch::Skylake,
                                               defaultDb());
    core::PerformancePredictor predictor(set);
    core::Prediction expected = predictor.analyzeLoop(
        asm_("ADD RAX, RBX\nIMUL RCX, RAX"));
    EXPECT_NE(
        response.body.find(
            "\"analysis\":{\"block_throughput\":" +
            xmlFormatDouble(expected.block_throughput)),
        std::string::npos)
        << response.body;
    EXPECT_NE(response.body.find("\"bottleneck\":\"" +
                                 expected.bottleneck + "\""),
              std::string::npos);

    // Unknown mnemonics and missing parameters are 400s.
    EXPECT_EQ(
        service->handle(get("/predict?uarch=SKL&asm=BOGUS%20RAX"))
            .status,
        400);
    EXPECT_EQ(service->handle(get("/predict?uarch=SKL")).status, 400);
    EXPECT_EQ(service->handle(get("/predict?asm=NOP")).status, 400);
}

TEST(Service, PredictAdmissionRejectsOversizedKernelsWith413)
{
    server::QueryService::Options options;
    options.admission.max_instructions = 2;
    server::QueryService service(sliceCatalog(), defaultDb(),
                                 options);
    HttpResponse response = service.handle(
        get("/predict?uarch=SKL&asm=NOP;NOP;NOP"));
    EXPECT_EQ(response.status, 413) << response.body;
    EXPECT_NE(response.body.find("\"rejected_by\":\"admission\""),
              std::string::npos)
        << response.body;
    EXPECT_NE(response.body.find("\"max_instructions\":2"),
              std::string::npos)
        << response.body;
    // At the limit is fine.
    EXPECT_EQ(
        service.handle(get("/predict?uarch=SKL&asm=NOP;NOP")).status,
        200);
}

TEST(Service, PredictRejectsOverBudgetSimulationsWith429)
{
    server::QueryService::Options options;
    options.engine.predict.cycle_budget = 1;
    server::QueryService service(sliceCatalog(), defaultDb(),
                                 options);
    HttpResponse response = service.handle(
        get("/predict?uarch=SKL&asm=ADD%20RAX,%20RBX"));
    EXPECT_EQ(response.status, 429) << response.body;
    EXPECT_NE(response.body.find("\"rejected_by\":\"admission\""),
              std::string::npos)
        << response.body;
    EXPECT_NE(response.body.find("\"cycle_budget\":1"),
              std::string::npos)
        << response.body;
}

TEST(Service, PredictRejectsWhenEngineIsSaturatedWith429)
{
    server::QueryService::Options options;
    options.engine.max_inflight = 0;
    server::QueryService service(sliceCatalog(), defaultDb(),
                                 options);
    HttpResponse response = service.handle(
        get("/predict?uarch=SKL&asm=ADD%20RAX,%20RBX"));
    EXPECT_EQ(response.status, 429) << response.body;
    EXPECT_NE(response.body.find("\"max_inflight\":0"),
              std::string::npos)
        << response.body;
    auto stats = service.engineStats();
    EXPECT_EQ(stats.rejected, 1u);
    EXPECT_EQ(stats.simulations, 0u);
}

TEST(Service, PostPredictUsesBody)
{
    auto service = makeService();
    HttpRequest request;
    request.method = "POST";
    request.target = "/predict?uarch=SKL";
    request.path = "/predict";
    request.query["uarch"] = "SKL";
    request.body = "ADD RAX, RBX";
    HttpResponse response = service->handle(request);
    EXPECT_EQ(response.status, 200) << response.body;
    EXPECT_NE(response.body.find("\"block_throughput\":"),
              std::string::npos);

    // Non-predict endpoints reject POST.
    HttpRequest bad = request;
    bad.target = "/search";
    bad.path = "/search";
    EXPECT_EQ(service->handle(bad).status, 405);
}

TEST(Service, UnknownEndpointIs404)
{
    auto service = makeService();
    EXPECT_EQ(service->handle(get("/nope")).status, 404);
}

// ---------------------------------------------------------------------
// Cache + metrics behaviour.
// ---------------------------------------------------------------------

TEST(Service, RepeatedGetHitsCacheWithIdenticalBody)
{
    auto service = makeService();
    const std::string target = "/instr/ADD_R64_R64?uarch=SKL";
    HttpResponse first = service->handle(get(target));
    HttpResponse second = service->handle(get(target));
    EXPECT_EQ(first.status, 200);
    EXPECT_FALSE(first.cache_hit);
    EXPECT_TRUE(second.cache_hit);
    EXPECT_EQ(first.bodyView(), second.bodyView());
    // Blob-backed entries are shared, not copied: the cached response
    // points at the same bytes, and the cache owns no body of its own.
    EXPECT_EQ(first.blob.get(), second.blob.get());
    EXPECT_NE(first.blob.get(), nullptr);
    EXPECT_EQ(service->cacheStats().owned_bytes, 0u);

    auto metrics = service->metrics(Endpoint::Instr);
    EXPECT_EQ(metrics.requests, 2u);
    EXPECT_EQ(metrics.cache_hits, 1u);
    EXPECT_EQ(metrics.errors, 0u);

    auto cache = service->cacheStats();
    EXPECT_EQ(cache.hits, 1u);
    EXPECT_EQ(cache.insertions, 1u);
}

TEST(Service, ErrorsAreCountedAndNotCached)
{
    auto service = makeService();
    EXPECT_EQ(service->handle(get("/instr/NO_SUCH")).status, 404);
    EXPECT_EQ(service->handle(get("/instr/NO_SUCH")).status, 404);
    auto metrics = service->metrics(Endpoint::Instr);
    EXPECT_EQ(metrics.requests, 2u);
    EXPECT_EQ(metrics.errors, 2u);
    EXPECT_EQ(metrics.cache_hits, 0u);
    EXPECT_EQ(service->cacheStats().insertions, 0u);
}

TEST(Service, StatsEndpointExposesMetricsAndCache)
{
    auto service = makeService();
    service->handle(get("/healthz"));
    HttpResponse response = service->handle(get("/stats"));
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("\"/healthz\":{\"requests\":1"),
              std::string::npos)
        << response.body;
    EXPECT_NE(response.body.find("\"cache\":{"), std::string::npos);

    // Schema pinning for the prediction-service additions: latency
    // percentiles per endpoint, the kernel memo, and the admission +
    // engine counter blocks.
    for (const char *key :
         {"\"p50_us\":", "\"p99_us\":", "\"kernel_memo\":{",
          "\"predict\":{", "\"admission\":{", "\"max_instructions\":",
          "\"max_listing_bytes\":", "\"cycle_budget\":",
          "\"max_inflight\":", "\"rejected_oversize\":",
          "\"rejected_budget\":", "\"rejected_busy\":",
          "\"engine\":{", "\"workers\":", "\"inflight\":",
          "\"simulations\":", "\"coalesced\":",
          "\"sim_cache_hits\":", "\"sim_cache_misses\":",
          "\"sim_cache_entries\":"})
        EXPECT_NE(response.body.find(key), std::string::npos)
            << "missing " << key << " in\n"
            << response.body;
}

TEST(Service, StatsCountsKernelMemoAndAdmissionRejections)
{
    server::QueryService::Options options;
    options.admission.max_instructions = 2;
    server::QueryService service(sliceCatalog(), defaultDb(),
                                 options);
    service.handle(get("/predict?uarch=SKL&asm=ADD%20RAX,%20RBX"));
    // A different spelling of the same kernel: misses the outer
    // response cache (different request text) but hits the memo
    // (same kernel fingerprint).
    HttpRequest respelled;
    respelled.method = "POST";
    respelled.target = "/predict?uarch=SKL";
    respelled.path = "/predict";
    respelled.query["uarch"] = "SKL";
    respelled.body = "ADD RAX,RBX  # same kernel";
    service.handle(respelled);
    service.handle(get("/predict?uarch=SKL&asm=NOP;NOP;NOP"));

    auto memo = service.kernelMemoStats();
    EXPECT_EQ(memo.insertions, 1u);
    EXPECT_EQ(memo.hits, 1u);

    HttpResponse response = service.handle(get("/stats"));
    ASSERT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("\"rejected_oversize\":1"),
              std::string::npos)
        << response.body;
    EXPECT_NE(response.body.find("\"simulations\":1"),
              std::string::npos)
        << response.body;
}

// ---------------------------------------------------------------------
// Hot swap: generations, /reload, and the stale-cache regression.
// ---------------------------------------------------------------------

TEST(ServiceSwap, SwapServesNewGenerationImmediately)
{
    auto service = makeService();
    EXPECT_EQ(service->catalog()->generation(), 1u);
    uint64_t first_epoch = service->epoch();

    HttpResponse before = service->handle(get("/healthz"));
    EXPECT_NE(before.body.find("\"uarches\":[\"NHM\",\"SKL\"]"),
              std::string::npos);

    service->swapCatalog(altCatalog());
    EXPECT_GT(service->epoch(), first_epoch);
    HttpResponse after = service->handle(get("/healthz"));
    EXPECT_NE(after.body.find("\"uarches\":[\"SKL\"]"),
              std::string::npos)
        << after.body;
}

TEST(ServiceSwap, CacheNeverServesAcrossGenerations)
{
    // The stale-cache regression test: a response cached for one
    // generation must be unreachable after a hot swap, in both
    // directions, without any flush.
    auto service = makeService();
    // Any DIV variant: present in the slice, absent from altCatalog.
    db::Query div_query;
    div_query.mnemonic = "DIV";
    div_query.arch = uarch::UArch::Skylake;
    div_query.limit = 1;
    auto div_records = sliceCatalog()->search(div_query);
    ASSERT_EQ(div_records.size(), 1u);
    const std::string target = "/instr/" +
                               std::string(div_records[0].name()) +
                               "?uarch=SKL";
    HttpResponse original = service->handle(get(target));
    ASSERT_EQ(original.status, 200) << original.body;
    EXPECT_TRUE(service->handle(get(target)).cache_hit);

    // The alternate generation has no DIV records at all: a stale
    // cache entry would keep answering 200.
    service->swapCatalog(altCatalog());
    HttpResponse swapped = service->handle(get(target));
    EXPECT_FALSE(swapped.cache_hit);
    EXPECT_EQ(swapped.status, 404) << swapped.body;

    // Swapping back serves the original content again, but through a
    // fresh epoch: the first request must be a miss, not a replay of
    // the epoch-1 entry.
    service->swapCatalog(sliceCatalog());
    HttpResponse back = service->handle(get(target));
    EXPECT_FALSE(back.cache_hit);
    EXPECT_EQ(back.status, 200);
    EXPECT_EQ(back.bodyView(), original.bodyView());
}

TEST(ServiceSwap, PredictContextsAreRebuiltPerGeneration)
{
    auto service = makeService();
    const std::string target =
        "/predict?uarch=SKL&asm=ADD%20RAX,%20RBX";
    HttpResponse before = service->handle(get(target));
    ASSERT_EQ(before.status, 200) << before.body;

    // The alternate catalog lacks IMUL entirely; a predictor context
    // leaked across the swap would still price it.
    service->swapCatalog(altCatalog());
    HttpResponse after = service->handle(get(target));
    EXPECT_EQ(after.status, 200) << after.body;
    HttpResponse imul = service->handle(
        get("/predict?uarch=SKL&asm=IMUL%20RCX,%20RAX"));
    EXPECT_NE(imul.body.find("not present in the characterization"),
              std::string::npos)
        << imul.body;
}

TEST(ServiceSwap, ReloadEndpointSwapsViaReloader)
{
    auto service = makeService();
    // /reload mutates serving state: GET is rejected, and without a
    // configured source POST reports server-side unavailability.
    EXPECT_EQ(service->handle(get("/reload")).status, 405);

    HttpRequest post;
    post.method = "POST";
    post.target = "/reload";
    post.path = "/reload";
    EXPECT_EQ(service->handle(post).status, 503);

    size_t reloads = 0;
    service->setReloader([&reloads] {
        ++reloads;
        return altCatalog();
    });
    HttpResponse response = service->handle(post);
    EXPECT_EQ(response.status, 200) << response.body;
    EXPECT_NE(response.body.find("\"status\":\"reloaded\""),
              std::string::npos);
    EXPECT_EQ(reloads, 1u);
    EXPECT_EQ(service->catalog().get(), altCatalog().get());
    EXPECT_EQ(service->metrics(Endpoint::Reload).requests, 3u);
}

// ---------------------------------------------------------------------
// Concurrency: N threads hammer the service; every response must be
// identical to the single-threaded answer.
// ---------------------------------------------------------------------

TEST(ServiceConcurrency, HammeredEndpointsStaySnapshotIdentical)
{
    auto service = makeService();
    const std::vector<std::string> targets = {
        "/healthz",
        "/uarchs",
        "/instr/ADD_R64_R64",
        "/instr/ADD_R64_R64?uarch=SKL",
        "/search?uarch=SKL&mnemonic=ADD",
        "/search?uses=p0&limit=5",
        "/diff?a=NHM&b=SKL",
        "/predict?uarch=SKL&asm=ADD%20RAX,%20RBX",
    };
    std::vector<std::string> baseline;
    for (const std::string &target : targets)
        baseline.push_back(
            std::string(service->handle(get(target)).bodyView()));

    std::atomic<size_t> mismatches{0};
    ThreadPool pool(8);
    pool.parallelFor(800, [&](size_t i, size_t) {
        size_t pick = i % targets.size();
        HttpResponse response = service->handle(get(targets[pick]));
        if (response.status != 200 ||
            response.bodyView() != baseline[pick])
            ++mismatches;
    });
    EXPECT_EQ(mismatches.load(), 0u);

    // The hammering must have been served mostly from cache.
    auto cache = service->cacheStats();
    EXPECT_GT(cache.hits, 0u);
    EXPECT_EQ(service->metrics(Endpoint::Search).errors, 0u);
}

// ---------------------------------------------------------------------
// Socket end-to-end.
// ---------------------------------------------------------------------

/** Loopback TCP connect; -1 on failure. */
int
connectTo(uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

void
sendRaw(int fd, const std::string &bytes)
{
    size_t sent = 0;
    while (sent < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + sent,
                           bytes.size() - sent, 0);
        if (n <= 0)
            break;
        sent += static_cast<size_t>(n);
    }
}

/**
 * Read exactly one Content-Length-framed response off the socket
 * (the keep-alive world's framing; reading to EOF only works on the
 * final response of a connection).
 */
std::string
readOneResponse(int fd, std::string &carry)
{
    std::string response = std::move(carry);
    carry.clear();
    char chunk[4096];
    size_t head_end;
    while (true) {
        size_t pos = response.find("\r\n\r\n");
        if (pos != std::string::npos) {
            head_end = pos + 4;
            break;
        }
        ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0)
            return response;
        response.append(chunk, static_cast<size_t>(n));
    }
    size_t body_bytes = 0;
    size_t cl = response.find("Content-Length: ");
    if (cl != std::string::npos && cl < head_end)
        body_bytes = static_cast<size_t>(
            std::strtoul(response.c_str() + cl + 16, nullptr, 10));
    while (response.size() < head_end + body_bytes) {
        ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0)
            break;
        response.append(chunk, static_cast<size_t>(n));
    }
    carry = response.substr(
        std::min(response.size(), head_end + body_bytes));
    response.resize(std::min(response.size(), head_end + body_bytes));
    return response;
}

/** Blocking loopback HTTP GET on a fresh connection; returns the
 *  full wire response. Sends Connection: close so EOF framing works. */
std::string
httpGet(uint16_t port, const std::string &target)
{
    int fd = connectTo(port);
    if (fd < 0)
        return "";
    sendRaw(fd, "GET " + target +
                    " HTTP/1.1\r\nHost: localhost\r\n"
                    "Connection: close\r\n\r\n");
    std::string response;
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0)
        response.append(chunk, static_cast<size_t>(n));
    ::close(fd);
    return response;
}

TEST(HttpServerSocket, ServesRequestsOnEphemeralPort)
{
    auto service = makeService();
    server::HttpServer http(*service);
    http.start();
    ASSERT_GT(http.port(), 0);

    std::string health = httpGet(http.port(), "/healthz");
    EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);

    std::string instr =
        httpGet(http.port(), "/instr/ADD_R64_R64?uarch=SKL");
    EXPECT_NE(instr.find("\"uarch\":\"SKL\""), std::string::npos);

    // Second fetch is served from the cache, visibly so.
    std::string cached =
        httpGet(http.port(), "/instr/ADD_R64_R64?uarch=SKL");
    EXPECT_NE(cached.find("X-Cache: hit"), std::string::npos);

    std::string missing = httpGet(http.port(), "/instr/NO_SUCH");
    EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

    http.stop();
    EXPECT_FALSE(http.running());
}

TEST(HttpServerSocket, ConcurrentClientsGetConsistentAnswers)
{
    auto service = makeService();
    server::HttpServer http(*service);
    http.start();

    // Headers carry a per-request X-Request-Id, so identity is a
    // body property: compare everything after the blank line.
    auto body_of = [](const std::string &response) {
        size_t split = response.find("\r\n\r\n");
        return split == std::string::npos ? response
                                          : response.substr(split + 4);
    };
    std::string baseline = httpGet(http.port(), "/healthz");
    ASSERT_NE(baseline.find("200 OK"), std::string::npos);

    std::atomic<size_t> mismatches{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 8; ++t) {
        clients.emplace_back([&] {
            for (int i = 0; i < 10; ++i)
                if (body_of(httpGet(http.port(), "/healthz")) !=
                    body_of(baseline))
                    ++mismatches;
        });
    }
    for (std::thread &client : clients)
        client.join();
    // /healthz is uncached, so every response was freshly rendered;
    // all of them must still be byte-identical.
    EXPECT_EQ(mismatches.load(), 0u);

    http.stop();
}

TEST(HttpServerSocket, KeepAliveServesManyRequestsPerConnection)
{
    auto service = makeService();
    server::HttpServer http(*service);
    http.start();

    int fd = connectTo(http.port());
    ASSERT_GE(fd, 0);
    std::string carry;

    // Several sequential requests over the one connection.
    for (int i = 0; i < 5; ++i) {
        sendRaw(fd, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        std::string response = readOneResponse(fd, carry);
        EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos)
            << "request " << i;
        EXPECT_NE(response.find("Connection: keep-alive"),
                  std::string::npos)
            << "request " << i;
    }

    // Two pipelined requests in a single write: both answered, in
    // order, off the buffered stream.
    sendRaw(fd, "GET /uarchs HTTP/1.1\r\nHost: x\r\n\r\n"
                "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    std::string first = readOneResponse(fd, carry);
    std::string second = readOneResponse(fd, carry);
    EXPECT_NE(first.find("\"uarchs\""), std::string::npos);
    EXPECT_NE(second.find("\"status\":\"ok\""), std::string::npos);

    // Connection: close is honored with a close frame and EOF.
    sendRaw(fd, "GET /healthz HTTP/1.1\r\nHost: x\r\n"
                "Connection: close\r\n\r\n");
    std::string last = readOneResponse(fd, carry);
    EXPECT_NE(last.find("Connection: close"), std::string::npos);
    char byte;
    EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);   // server closed
    ::close(fd);

    http.stop();
}

TEST(HttpServerSocket, KeepAliveConnectionBudgetIsBounded)
{
    auto service = makeService();
    server::HttpServer::Options options;
    options.max_requests_per_connection = 2;
    server::HttpServer http(*service, options);
    http.start();

    int fd = connectTo(http.port());
    ASSERT_GE(fd, 0);
    std::string carry;
    sendRaw(fd, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_NE(readOneResponse(fd, carry).find("Connection: keep-alive"),
              std::string::npos);
    sendRaw(fd, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    // The budget's final response announces the close.
    EXPECT_NE(readOneResponse(fd, carry).find("Connection: close"),
              std::string::npos);
    char byte;
    EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
    ::close(fd);

    http.stop();
}

TEST(HttpServerSocket, HotSwapUnderConcurrentLoadIsAtomic)
{
    // The acceptance-criterion test: generations are swapped while
    // socket clients hammer the server. Every observed response must
    // be byte-identical to the answer one of the two generations
    // gives in isolation — a mixed or stale body fails — and after
    // the final swap a fresh request must serve the final generation.
    // Targets whose answers differ between the generations (the
    // slice has NHM + SKL and five mnemonics; alt has SKL ADD/XOR).
    const std::vector<std::string> targets = {
        "/instr/ADD_R64_R64",
        "/search?uses=p0&limit=5",
        "/diff?a=NHM&b=SKL",
    };

    // Per-generation baselines from standalone services (no swaps).
    auto baseline_of =
        [&](std::shared_ptr<const db::DatabaseCatalog> catalog) {
            server::QueryService isolated(catalog, defaultDb());
            std::vector<std::string> out;
            for (const std::string &target : targets)
                out.push_back(std::string(
                    isolated.handle(get(target)).bodyView()));
            return out;
        };
    const std::vector<std::string> baseline_a =
        baseline_of(sliceCatalog());
    const std::vector<std::string> baseline_b =
        baseline_of(altCatalog());
    for (size_t i = 0; i < targets.size(); ++i)
        ASSERT_NE(baseline_a[i], baseline_b[i]) << targets[i];

    auto service = makeService();
    server::HttpServer http(*service);
    http.start();

    std::atomic<bool> done{false};
    std::atomic<size_t> served{0};
    std::atomic<size_t> foreign{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&, t] {
            size_t i = static_cast<size_t>(t);
            while (!done.load(std::memory_order_relaxed)) {
                size_t pick = i++ % targets.size();
                std::string wire =
                    httpGet(http.port(), targets[pick]);
                size_t body_at = wire.find("\r\n\r\n");
                if (body_at == std::string::npos)
                    continue;   // connection raced server shutdown
                std::string body = wire.substr(body_at + 4);
                ++served;
                if (body != baseline_a[pick] &&
                    body != baseline_b[pick])
                    ++foreign;
            }
        });
    }

    // Swap back and forth while the clients run.
    for (int swap = 0; swap < 20; ++swap) {
        service->swapCatalog(swap % 2 == 0 ? altCatalog()
                                           : sliceCatalog());
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    service->swapCatalog(altCatalog());
    done.store(true);
    for (std::thread &client : clients)
        client.join();

    EXPECT_GT(served.load(), 0u);
    EXPECT_EQ(foreign.load(), 0u);

    // Post-swap requests serve the final generation, not a stale one.
    for (size_t i = 0; i < targets.size(); ++i) {
        std::string wire = httpGet(http.port(), targets[i]);
        EXPECT_EQ(wire.substr(wire.find("\r\n\r\n") + 4),
                  baseline_b[i])
            << targets[i];
    }

    http.stop();
}

TEST(HttpServerSocket, MalformedRequestGets400)
{
    auto service = makeService();
    server::HttpServer http(*service);
    http.start();

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(http.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    const char *garbage = "NOT-HTTP\r\n\r\n";
    ASSERT_GT(::send(fd, garbage, std::strlen(garbage), 0), 0);
    std::string response;
    char chunk[1024];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0)
        response.append(chunk, static_cast<size_t>(n));
    ::close(fd);
    EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);

    http.stop();
}

// ---------------------------------------------------------------------
// Fail-operational reload: a corrupt on-disk catalog rejects the
// reload with a structured 503 while the pinned generation keeps
// serving byte-identical answers.
// ---------------------------------------------------------------------

/** Fresh, empty temp directory for one test. */
std::string
freshDir(const std::string &name)
{
    auto path = std::filesystem::temp_directory_path() /
                ("uops_server_test_" + name);
    std::filesystem::remove_all(path);
    return path.string();
}

void
overwriteFile(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(static_cast<bool>(os)) << path;
}

HttpRequest
postReload()
{
    HttpRequest post;
    post.method = "POST";
    post.target = "/reload";
    post.path = "/reload";
    return post;
}

TEST(ServiceReload, CorruptCatalogKeepsOldGenerationWith503)
{
    const std::string dir = freshDir("corrupt_reload");
    db::saveCatalogDir(*sliceCatalog(), dir);

    auto service = makeService();
    service->setReloader([dir](db::RecoveryReport &report) {
        return db::openCatalog(dir, db::LoadMode::Mmap, &report);
    });

    // Capture answers from the pinned generation, then break every
    // on-disk generation (a single manifest with a bad magic).
    const std::string instr_before = std::string(
        service->handle(get("/instr/ADD_R64_R64")).bodyView());
    uint64_t epoch_before = service->epoch();
    overwriteFile(dir + "/" + db::manifestFileName(1),
                  "not a manifest");

    HttpResponse response = service->handle(postReload());
    EXPECT_EQ(response.status, 503) << response.body;
    EXPECT_NE(response.body.find("\"reason\":\"reload_rejected\""),
              std::string::npos)
        << response.body;
    EXPECT_NE(response.body.find("\"serving_generation\":1"),
              std::string::npos)
        << response.body;

    // Fail-operational: nothing swapped, answers byte-identical.
    EXPECT_EQ(service->epoch(), epoch_before);
    EXPECT_EQ(service->handle(get("/instr/ADD_R64_R64")).bodyView(),
              instr_before);

    // The rejection is visible in /stats.
    std::string stats = service->handle(get("/stats")).body;
    EXPECT_NE(stats.find("\"reload\":{"), std::string::npos);
    EXPECT_NE(stats.find("\"rejections\":1"), std::string::npos)
        << stats;

    // Repairing the store makes the next reload succeed.
    db::saveCatalogDir(*sliceCatalog(), dir);
    EXPECT_EQ(service->handle(postReload()).status, 200);
    EXPECT_EQ(service->epoch(), epoch_before + 1);
}

TEST(ServiceReload, RecoveredReloadReportsTheFallback)
{
    const std::string dir = freshDir("recovered_reload");
    db::saveCatalogDir(*sliceCatalog(), dir);
    // Publish generation 2 (same shards), then corrupt its
    // manifest's stored shard hash so verification rejects it.
    auto gen2 = db::DatabaseCatalog::splice(*sliceCatalog(), {});
    db::saveCatalogDir(*gen2, dir);
    const std::string newest = dir + "/" + db::manifestFileName(2);
    std::string bytes;
    {
        std::ifstream is(newest, std::ios::binary);
        std::ostringstream os;
        os << is.rdbuf();
        bytes = std::move(os).str();
    }
    ASSERT_GT(bytes.size(), 48u);
    bytes[40] = static_cast<char>(bytes[40] ^ 0xff);
    overwriteFile(newest, bytes);

    auto service = makeService();
    service->setReloader([dir](db::RecoveryReport &report) {
        return db::openCatalog(dir, db::LoadMode::Mmap, &report);
    });

    HttpResponse response = service->handle(postReload());
    EXPECT_EQ(response.status, 200) << response.body;
    EXPECT_NE(response.body.find("\"recovery\":{"),
              std::string::npos)
        << response.body;
    EXPECT_NE(response.body.find("\"recovered\":true"),
              std::string::npos)
        << response.body;
    EXPECT_EQ(service->catalog()->generation(), 1u);

    std::string stats = service->handle(get("/stats")).body;
    EXPECT_NE(stats.find("\"recoveries\":1"), std::string::npos)
        << stats;
    EXPECT_NE(stats.find("\"verification_failures\":1"),
              std::string::npos)
        << stats;
}

// ---------------------------------------------------------------------
// Graceful drain and slow clients.
// ---------------------------------------------------------------------

/** True when @p wire holds a complete Content-Length-framed
 *  response (header terminator present, full body received). */
bool
completeResponse(const std::string &wire)
{
    size_t head_end = wire.find("\r\n\r\n");
    if (head_end == std::string::npos)
        return false;
    size_t cl = wire.find("Content-Length: ");
    if (cl == std::string::npos || cl > head_end)
        return false;
    size_t body_bytes = static_cast<size_t>(
        std::strtoul(wire.c_str() + cl + 16, nullptr, 10));
    return wire.size() == head_end + 4 + body_bytes;
}

TEST(HttpServerDrain, DrainUnderLoadSendsEveryResponseWhole)
{
    auto service = makeService();
    server::HttpServer::Options options;
    options.num_threads = 4;
    server::HttpServer http(*service, options);
    http.start();

    // Clients hammer until the listener goes away. Every response
    // that starts must arrive whole — a refused or never-accepted
    // connection (empty wire) is fine, a truncated body is not.
    std::atomic<size_t> complete{0};
    std::atomic<size_t> truncated{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&, t] {
            const std::string target =
                t % 2 == 0 ? "/search?uses=p0&limit=5" : "/healthz";
            while (true) {
                int fd = connectTo(http.port());
                if (fd < 0)
                    return;   // drain closed the listener
                sendRaw(fd, "GET " + target +
                                " HTTP/1.1\r\nHost: x\r\n"
                                "Connection: close\r\n\r\n");
                std::string wire;
                char chunk[4096];
                ssize_t n;
                while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0)
                    wire.append(chunk, static_cast<size_t>(n));
                ::close(fd);
                if (wire.empty())
                    continue;   // refused mid-drain: acceptable
                if (completeResponse(wire))
                    ++complete;
                else
                    ++truncated;
            }
        });
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    bool clean = http.drain(std::chrono::seconds(10));
    for (std::thread &client : clients)
        client.join();

    EXPECT_TRUE(clean);
    EXPECT_GT(complete.load(), 0u);
    EXPECT_EQ(truncated.load(), 0u);
    EXPECT_EQ(http.activeConnections(), 0u);
    EXPECT_FALSE(http.running());
    EXPECT_TRUE(http.draining());
}

TEST(HttpServerDrain, StalledClientIsForcedAtTheDeadline)
{
    auto service = makeService();
    server::HttpServer::Options options;
    options.num_threads = 2;
    options.recv_timeout_seconds = 30;   // not the mechanism here
    server::HttpServer http(*service, options);
    http.start();

    // A client that sends half a request head and stalls would pin
    // its worker past any deadline; drain must force it instead of
    // waiting for it.
    int fd = connectTo(http.port());
    ASSERT_GE(fd, 0);
    sendRaw(fd, "GET /healthz HT");
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    ASSERT_EQ(http.activeConnections(), 1u);

    auto t0 = std::chrono::steady_clock::now();
    bool clean = http.drain(std::chrono::milliseconds(300));
    auto elapsed = std::chrono::steady_clock::now() - t0;

    EXPECT_FALSE(clean);   // the deadline had to fire
    EXPECT_LT(elapsed, std::chrono::seconds(5));
    EXPECT_EQ(http.activeConnections(), 0u);

    // The forced socket is dead: the client sees EOF or a reset.
    char chunk[64];
    EXPECT_LE(::recv(fd, chunk, sizeof chunk, 0), 0);
    ::close(fd);
}

TEST(HttpServerDrain, SlowClientRecvTimeoutFreesTheWorker)
{
    auto service = makeService();
    server::HttpServer::Options options;
    options.num_threads = 2;
    options.recv_timeout_seconds = 1;
    server::HttpServer http(*service, options);
    http.start();

    // Stall mid-request-head: the per-connection receive timeout
    // must cut the connection loose, not leak the worker.
    int fd = connectTo(http.port());
    ASSERT_GE(fd, 0);
    sendRaw(fd, "GET /healthz HT");

    // The other worker keeps serving fresh connections meanwhile.
    std::string health = httpGet(http.port(), "/healthz");
    EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);

    auto t0 = std::chrono::steady_clock::now();
    char chunk[64];
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_LE(n, 0);   // server closed on us
    EXPECT_LT(elapsed, std::chrono::seconds(5));
    ::close(fd);

    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_EQ(http.activeConnections(), 0u);
    EXPECT_TRUE(http.drain(std::chrono::seconds(1)));
}

// ---------------------------------------------------------------------
// Observability: /metrics exposition, request IDs, debug timings,
// and the structured access log.
// ---------------------------------------------------------------------

TEST(Observability, MetricsExpositionMatchesRegistry)
{
    auto service = makeService();
    service->handle(get("/healthz"));
    service->handle(get("/healthz"));
    service->handle(get("/instr/ADD_R64_R64?uarch=SKL"));
    service->handle(get("/instr/ADD_R64_R64?uarch=SKL"));   // hit
    service->handle(get("/nope"));                          // 404
    service->handle(get("/predict?uarch=SKL&asm=ADD%20RAX,%20RBX"));

    HttpResponse response = service->handle(get("/metrics"));
    ASSERT_EQ(response.status, 200);
    EXPECT_NE(response.content_type.find("text/plain"),
              std::string::npos);
    EXPECT_NE(response.content_type.find("version=0.0.4"),
              std::string::npos);
    Exposition parsed = parseExposition(response.body);

    // Every per-endpoint series must agree with the /stats-backing
    // accessor — one registry, two renderings. The /metrics request
    // itself is mid-flight when the body renders: its own request
    // counter is already incremented, its latency not yet observed.
    for (size_t i = 0; i < server::kNumEndpoints; ++i) {
        auto endpoint = static_cast<Endpoint>(i);
        auto metrics = service->metrics(endpoint);
        std::string labels = std::string("{endpoint=\"") +
                             server::endpointName(endpoint) + "\"}";
        EXPECT_EQ(parsed.series["uops_http_requests_total" + labels],
                  static_cast<double>(metrics.requests))
            << server::endpointName(endpoint);
        EXPECT_EQ(parsed.series["uops_http_errors_total" + labels],
                  static_cast<double>(metrics.errors));
        EXPECT_EQ(
            parsed.series["uops_http_cache_hits_total" + labels],
            static_cast<double>(metrics.cache_hits));
        if (endpoint != Endpoint::Metrics)
            EXPECT_EQ(
                parsed.series["uops_http_request_duration_us_count" +
                              labels],
                static_cast<double>(metrics.samples));
    }

    // Spot-check the derived expectations the scrape is for.
    EXPECT_EQ(
        parsed.series["uops_http_requests_total{endpoint=\"/healthz\"}"],
        2.0);
    EXPECT_EQ(
        parsed.series["uops_http_errors_total{endpoint=\"other\"}"],
        1.0);
    EXPECT_EQ(parsed.series["uops_http_cache_hits_total"
                            "{endpoint=\"/instr\"}"],
              1.0);

    // Cache, engine, and serving-state series mirror their stats
    // structs through render-time callbacks.
    auto cache = service->cacheStats();
    EXPECT_EQ(parsed.series["uops_response_cache_hits_total"
                            "{cache=\"response\"}"],
              static_cast<double>(cache.hits));
    EXPECT_EQ(parsed.series["uops_response_cache_insertions_total"
                            "{cache=\"response\"}"],
              static_cast<double>(cache.insertions));
    EXPECT_EQ(parsed.series["uops_engine_simulations_total"], 1.0);
    EXPECT_EQ(parsed.series["uops_serving_generation"],
              static_cast<double>(service->catalog()->generation()));
    EXPECT_EQ(parsed.series.count("uops_reloads_total"), 1u);
    EXPECT_EQ(
        parsed.series.count("uops_catalog_recoveries_total"), 1u);

    // Families carry HELP and TYPE exactly once each.
    EXPECT_EQ(parsed.type["uops_http_requests_total"], "counter");
    EXPECT_EQ(parsed.type["uops_http_request_duration_us"],
              "histogram");
    EXPECT_FALSE(parsed.help["uops_http_requests_total"].empty());
}

TEST(Observability, StatsReportsSamplesAndNullPercentiles)
{
    auto service = makeService();
    service->handle(get("/healthz"));
    HttpResponse response = service->handle(get("/stats"));
    ASSERT_EQ(response.status, 200);
    // /diff was never hit: explicit zero samples, null percentiles —
    // distinguishable from "fast" (which /healthz's numbers are not).
    EXPECT_NE(response.body.find(
                  "\"/diff\":{\"requests\":0,\"errors\":0,"
                  "\"cache_hits\":0,\"total_us\":0,\"samples\":0,"
                  "\"p50_us\":null,\"p99_us\":null"),
              std::string::npos)
        << response.body;
    size_t healthz = response.body.find("\"/healthz\":{");
    ASSERT_NE(healthz, std::string::npos);
    size_t healthz_end = response.body.find('}', healthz);
    ASSERT_NE(healthz_end, std::string::npos);
    std::string block =
        response.body.substr(healthz, healthz_end - healthz + 1);
    EXPECT_NE(block.find("\"samples\":1"), std::string::npos)
        << block;
    EXPECT_EQ(block.find("\"p50_us\":null"), std::string::npos)
        << block;
}

TEST(Observability, RequestIdsAreEchoedOrMinted)
{
    auto service = makeService();

    // No client ID: minted, 16 lowercase hex.
    HttpResponse minted = service->handle(get("/healthz"));
    ASSERT_EQ(minted.request_id.size(), 16u);
    for (char c : minted.request_id)
        EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)));

    // Sane client ID: echoed verbatim, on errors too.
    HttpRequest tagged = get("/nope");
    tagged.headers.emplace_back("X-Request-Id", "client-id-42");
    HttpResponse echoed = service->handle(tagged);
    EXPECT_EQ(echoed.status, 404);
    EXPECT_EQ(echoed.request_id, "client-id-42");

    // Garbage client ID (embedded control char): replaced, not
    // reflected back into the header section.
    HttpRequest hostile = get("/healthz");
    hostile.headers.emplace_back("X-Request-Id", "bad\rid");
    HttpResponse replaced = service->handle(hostile);
    EXPECT_EQ(replaced.request_id.size(), 16u);
    EXPECT_EQ(replaced.request_id.find('\r'), std::string::npos);

    // The serialized response carries the header.
    std::string wire = server::serializeResponse(echoed);
    EXPECT_NE(wire.find("X-Request-Id: client-id-42\r\n"),
              std::string::npos);
}

TEST(Observability, CachedResponsesGetFreshRequestIds)
{
    auto service = makeService();
    const std::string target = "/instr/ADD_R64_R64?uarch=SKL";
    HttpResponse first = service->handle(get(target));
    HttpResponse second = service->handle(get(target));
    ASSERT_TRUE(second.cache_hit);
    EXPECT_EQ(first.bodyView(), second.bodyView());
    // Correlation must stay per-request even when the body is shared.
    EXPECT_NE(first.request_id, second.request_id);
}

TEST(Observability, DebugTimingsExposesSpansAndBypassesCaches)
{
    auto service = makeService();
    const std::string target =
        "/predict?uarch=SKL&asm=ADD%20RAX,%20RBX&debug=timings";
    HttpResponse first = service->handle(get(target));
    ASSERT_EQ(first.status, 200) << first.body;
    size_t timings_at = first.body.find("\"timings\":[");
    ASSERT_NE(timings_at, std::string::npos) << first.body;
    // Search within the timings array only: "analysis" also names the
    // static-analysis block earlier in the response body.
    std::string timings = first.body.substr(timings_at);

    // The span tree: one root covering the phase children.
    EXPECT_NE(timings.find("\"name\":\"predict\",\"depth\":0"),
              std::string::npos)
        << timings;
    for (const char *phase :
         {"\"parse\"", "\"assemble\"", "\"simulate\"",
          "\"analysis\"", "\"render\""}) {
        size_t at = timings.find(std::string("\"name\":") + phase);
        ASSERT_NE(at, std::string::npos) << phase << timings;
        EXPECT_NE(timings.find("\"depth\":1", at),
                  std::string::npos);
    }
    // Phases appear in pipeline order.
    EXPECT_LT(timings.find("\"parse\""),
              timings.find("\"assemble\""));
    EXPECT_LT(timings.find("\"assemble\""),
              timings.find("\"simulate\""));
    EXPECT_LT(timings.find("\"simulate\""),
              timings.find("\"analysis\""));
    EXPECT_LT(timings.find("\"analysis\""),
              timings.find("\"render\""));

    // Debug responses are never cached (response cache or kernel
    // memo), so timings stay per-request...
    HttpResponse second = service->handle(get(target));
    EXPECT_FALSE(second.cache_hit);
    EXPECT_EQ(service->cacheStats().insertions, 0u);
    EXPECT_EQ(service->kernelMemoStats().insertions, 0u);

    // ...and the memoized fast path stays byte-identical to a cold
    // render: the plain spelling of the same request has no timings.
    HttpResponse plain = service->handle(
        get("/predict?uarch=SKL&asm=ADD%20RAX,%20RBX"));
    ASSERT_EQ(plain.status, 200);
    EXPECT_EQ(plain.body.find("\"timings\""), std::string::npos);
}

TEST(Observability, AccessLogLinesAreValidJson)
{
    server::QueryService::Options options;
    options.log_level = obs::LogLevel::Info;
    options.slow_request_us = 1;   // everything interesting is slow
    server::QueryService service(sliceCatalog(), defaultDb(),
                                 options);
    std::mutex sink_mutex;
    std::vector<std::string> lines;
    service.logger().setSink([&](std::string_view line) {
        std::lock_guard<std::mutex> lock(sink_mutex);
        lines.emplace_back(line);
    });

    service.handle(get("/healthz"));
    service.handle(get("/nope"));
    HttpRequest tagged =
        get("/predict?uarch=SKL&asm=ADD%20RAX,%20RBX");
    tagged.headers.emplace_back("X-Request-Id", "trace-me");
    service.handle(tagged);

    ASSERT_GE(lines.size(), 3u);
    bool saw_404 = false, saw_slow = false, saw_tagged = false;
    for (const std::string &line : lines) {
        EXPECT_TRUE(isValidJsonObject(line)) << line;
        if (line.find("\"event\":\"access\"") != std::string::npos &&
            line.find("\"status\":404") != std::string::npos)
            saw_404 = true;
        if (line.find("\"event\":\"slow_request\"") !=
            std::string::npos)
            saw_slow = true;
        if (line.find("\"id\":\"trace-me\"") != std::string::npos)
            saw_tagged = true;
    }
    EXPECT_TRUE(saw_404);
    EXPECT_TRUE(saw_slow);   // the /predict render dwarfs 1us
    EXPECT_TRUE(saw_tagged);
}

TEST(Observability, ConcurrentAccessLogStaysWellFormed)
{
    server::QueryService::Options options;
    options.log_level = obs::LogLevel::Info;
    server::QueryService service(sliceCatalog(), defaultDb(),
                                 options);
    std::mutex sink_mutex;
    std::vector<std::string> lines;
    service.logger().setSink([&](std::string_view line) {
        std::lock_guard<std::mutex> lock(sink_mutex);
        lines.emplace_back(line);
    });

    ThreadPool pool(8);
    pool.parallelFor(128, [&](size_t i, size_t) {
        HttpRequest request = get(
            i % 2 == 0 ? "/healthz"
                       : "/instr/ADD_R64_R64?uarch=SKL");
        request.headers.emplace_back("X-Request-Id",
                                     "req-" + std::to_string(i));
        service.handle(request);
    });

    ASSERT_EQ(lines.size(), 128u);
    std::set<std::string> ids;
    for (const std::string &line : lines) {
        ASSERT_TRUE(isValidJsonObject(line)) << line;
        size_t at = line.find("\"id\":\"req-");
        ASSERT_NE(at, std::string::npos) << line;
        ids.insert(line.substr(at, line.find('"', at + 7) - at));
    }
    EXPECT_EQ(ids.size(), 128u);   // no line lost, none interleaved
}

TEST(HttpServerSocket, RequestIdsPropagateThroughPipelining)
{
    auto service = makeService();
    server::HttpServer http(*service);
    http.start();

    int fd = connectTo(http.port());
    ASSERT_GE(fd, 0);
    // Two pipelined requests in one write, distinct client IDs: each
    // response must echo its own request's ID, in order.
    sendRaw(fd,
            "GET /healthz HTTP/1.1\r\nHost: x\r\n"
            "X-Request-Id: pipeline-a\r\n\r\n"
            "GET /uarchs HTTP/1.1\r\nHost: x\r\n"
            "X-Request-Id: pipeline-b\r\n\r\n");
    std::string carry;
    std::string first = readOneResponse(fd, carry);
    std::string second = readOneResponse(fd, carry);
    EXPECT_NE(first.find("X-Request-Id: pipeline-a\r\n"),
              std::string::npos)
        << first;
    EXPECT_EQ(first.find("pipeline-b"), std::string::npos);
    EXPECT_NE(second.find("X-Request-Id: pipeline-b\r\n"),
              std::string::npos)
        << second;
    EXPECT_EQ(second.find("pipeline-a"), std::string::npos);

    // A third request on the same connection without an ID gets a
    // fresh minted one.
    sendRaw(fd, "GET /healthz HTTP/1.1\r\nHost: x\r\n"
                "Connection: close\r\n\r\n");
    std::string third = readOneResponse(fd, carry);
    size_t at = third.find("X-Request-Id: ");
    ASSERT_NE(at, std::string::npos) << third;
    EXPECT_EQ(third.find("pipeline", at), std::string::npos);
    ::close(fd);
    http.stop();
}

TEST(HttpServerSocket, TransportErrorsCarryRequestIds)
{
    auto service = makeService();
    server::HttpServer http(*service);
    http.start();

    // Unparseable request head: refused at the transport layer with
    // a minted correlation ID.
    int fd = connectTo(http.port());
    ASSERT_GE(fd, 0);
    sendRaw(fd, "NOT A REQUEST\r\n\r\n");
    std::string carry;
    std::string refused = readOneResponse(fd, carry);
    EXPECT_NE(refused.find("HTTP/1.1 400"), std::string::npos)
        << refused;
    EXPECT_NE(refused.find("X-Request-Id: "), std::string::npos)
        << refused;
    ::close(fd);

    // Parsed head with a bad body declaration: the client's ID is
    // honored even on the refusal path.
    fd = connectTo(http.port());
    ASSERT_GE(fd, 0);
    sendRaw(fd, "POST /predict HTTP/1.1\r\nHost: x\r\n"
                "X-Request-Id: still-mine\r\n"
                "Content-Length: nonsense\r\n\r\n");
    std::string bad_length = readOneResponse(fd, carry);
    EXPECT_NE(bad_length.find("HTTP/1.1 400"), std::string::npos)
        << bad_length;
    EXPECT_NE(bad_length.find("X-Request-Id: still-mine\r\n"),
              std::string::npos)
        << bad_length;
    ::close(fd);
    http.stop();
}

} // namespace
} // namespace uops::test
