/**
 * @file
 * Tests for the HTTP serving layer (src/server): JSON/HTTP plumbing,
 * endpoint responses, the sharded LRU response cache, per-endpoint
 * metrics, concurrent request hammering with snapshot-identical
 * responses, and an end-to-end socket round trip against a live
 * HttpServer on an ephemeral loopback port.
 */

#include <atomic>
#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/batch.h"
#include "core/predictor.h"
#include "db/snapshot.h"
#include "server/http_server.h"
#include "server/json.h"
#include "support/thread_pool.h"
#include "test_util.h"

namespace uops::test {
namespace {

using server::Endpoint;
using server::HttpRequest;
using server::HttpResponse;

bool
sliceFilter(const isa::InstrVariant &v)
{
    const std::string &m = v.mnemonic();
    return m == "ADD" || m == "XOR" || m == "IMUL" || m == "DIV" ||
           m == "MOVAPS";
}

const db::InstructionDatabase &
sliceDb()
{
    static const db::InstructionDatabase *database = [] {
        core::BatchOptions options;
        options.num_threads = 2;
        options.characterizer.filter = sliceFilter;
        auto report = core::runBatchSweep(
            defaultDb(),
            {uarch::UArch::Nehalem, uarch::UArch::Skylake}, options);
        auto *built = new db::InstructionDatabase();
        built->ingest(report);
        return built;
    }();
    return *database;
}

/** Fresh service over the shared slice database. */
std::unique_ptr<server::QueryService>
makeService()
{
    return std::make_unique<server::QueryService>(sliceDb(),
                                                  defaultDb());
}

HttpRequest
get(const std::string &target)
{
    return server::parseRequestHead("GET " + target +
                                    " HTTP/1.1\r\nHost: x");
}

// ---------------------------------------------------------------------
// JSON writer.
// ---------------------------------------------------------------------

TEST(Json, WriterProducesStableDocuments)
{
    server::JsonWriter json;
    json.beginObject();
    json.member("name", "A \"quoted\"\nvalue");
    json.member("count", 3);
    json.member("ratio", 0.25);
    json.member("flag", true);
    json.key("list").beginArray();
    json.value(1).value(2);
    json.beginObject().member("x", 1).endObject();
    json.endArray();
    json.endObject();
    EXPECT_EQ(std::move(json).str(),
              "{\"name\":\"A \\\"quoted\\\"\\nvalue\",\"count\":3,"
              "\"ratio\":0.25,\"flag\":true,\"list\":[1,2,{\"x\":1}]}");
}

TEST(Json, EscapesControlCharacters)
{
    EXPECT_EQ(server::jsonEscape(std::string("a\x01"
                                             "b")),
              "a\\u0001b");
    EXPECT_EQ(server::jsonEscape("tab\there"), "tab\\there");
}

// ---------------------------------------------------------------------
// HTTP plumbing.
// ---------------------------------------------------------------------

TEST(Http, ParsesRequestLineQueryAndHeaders)
{
    HttpRequest request = server::parseRequestHead(
        "GET /search?mnemonic=ADD&tp_min=0.5&x=a%20b HTTP/1.1\r\n"
        "Host: localhost\r\nContent-Length: 7");
    EXPECT_EQ(request.method, "GET");
    EXPECT_EQ(request.path, "/search");
    EXPECT_EQ(request.query.at("mnemonic"), "ADD");
    EXPECT_EQ(request.query.at("tp_min"), "0.5");
    EXPECT_EQ(request.query.at("x"), "a b");
    ASSERT_NE(request.header("host"), nullptr);
    EXPECT_EQ(*request.header("HOST"), "localhost");
    EXPECT_EQ(server::contentLength(request), 7u);
}

TEST(Http, RejectsMalformedRequests)
{
    EXPECT_THROW(server::parseRequestHead("GARBAGE"), FatalError);
    EXPECT_THROW(server::parseRequestHead("GET /x SPDY/3"),
                 FatalError);
    EXPECT_THROW(server::percentDecode("%zz"), FatalError);
}

TEST(Http, SerializesResponsesWithLengthAndClose)
{
    HttpResponse response;
    response.body = "{\"a\":1}";
    std::string wire = server::serializeResponse(response);
    EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
    EXPECT_NE(wire.find("\r\n\r\n{\"a\":1}"), std::string::npos);
}

// ---------------------------------------------------------------------
// Response cache.
// ---------------------------------------------------------------------

TEST(Cache, LruEvictsLeastRecentlyUsedPerShard)
{
    server::ResponseCache cache(1, 2);
    HttpResponse response;
    response.body = "x";
    cache.put("a", response);
    cache.put("b", response);
    EXPECT_TRUE(cache.get("a").has_value());  // refresh a
    cache.put("c", response);                 // evicts b
    EXPECT_TRUE(cache.get("a").has_value());
    EXPECT_FALSE(cache.get("b").has_value());
    EXPECT_TRUE(cache.get("c").has_value());

    auto stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.hits, 3u);
    EXPECT_EQ(stats.misses, 1u);
}

// ---------------------------------------------------------------------
// Endpoints (router level, no sockets).
// ---------------------------------------------------------------------

TEST(Service, HealthzReportsRecordsAndUArches)
{
    auto service = makeService();
    HttpResponse response = service->handle(get("/healthz"));
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("\"status\":\"ok\""),
              std::string::npos);
    EXPECT_NE(response.body.find("\"uarches\":[\"NHM\",\"SKL\"]"),
              std::string::npos);
}

TEST(Service, InstrEndpointReturnsRecordsAndHonorsUArchParam)
{
    auto service = makeService();
    HttpResponse all = service->handle(get("/instr/ADD_R64_R64"));
    EXPECT_EQ(all.status, 200);
    // One record per uarch.
    EXPECT_NE(all.body.find("\"uarch\":\"NHM\""), std::string::npos);
    EXPECT_NE(all.body.find("\"uarch\":\"SKL\""), std::string::npos);

    HttpResponse one =
        service->handle(get("/instr/ADD_R64_R64?uarch=SKL"));
    EXPECT_EQ(one.status, 200);
    EXPECT_EQ(one.body.find("\"uarch\":\"NHM\""), std::string::npos);

    EXPECT_EQ(service->handle(get("/instr/NO_SUCH")).status, 404);
    EXPECT_EQ(service->handle(get("/instr")).status, 400);
}

TEST(Service, SearchEndpointFiltersAndCounts)
{
    auto service = makeService();
    HttpResponse response = service->handle(
        get("/search?uarch=SKL&mnemonic=ADD&limit=100"));
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("\"count\":"), std::string::npos);
    EXPECT_NE(response.body.find("\"mnemonic\":\"ADD\""),
              std::string::npos);
    EXPECT_EQ(response.body.find("\"mnemonic\":\"DIV\""),
              std::string::npos);

    // Port-mask query.
    HttpResponse by_ports =
        service->handle(get("/search?uarch=SKL&uses=p05&limit=3"));
    EXPECT_EQ(by_ports.status, 200);

    // Bad parameters are user errors, not 500s.
    EXPECT_EQ(service->handle(get("/search?tp_min=abc")).status, 400);
    EXPECT_EQ(service->handle(get("/search?uarch=XYZ")).status, 400);
}

TEST(Service, DiffEndpointComparesUArches)
{
    auto service = makeService();
    HttpResponse response = service->handle(get("/diff?a=NHM&b=SKL"));
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("\"common\":"), std::string::npos);
    EXPECT_NE(response.body.find("\"changed\":"), std::string::npos);
    EXPECT_EQ(service->handle(get("/diff?a=NHM")).status, 400);
}

TEST(Service, PredictMatchesDirectPredictor)
{
    auto service = makeService();
    HttpResponse response = service->handle(
        get("/predict?uarch=SKL&asm=ADD%20RAX,%20RBX;IMUL%20RCX,%20"
            "RAX"));
    ASSERT_EQ(response.status, 200) << response.body;

    // The served numbers must equal a direct PerformancePredictor
    // run over the same reconstructed characterization set.
    auto set = sliceDb().toCharacterizationSet(uarch::UArch::Skylake,
                                               defaultDb());
    core::PerformancePredictor predictor(set);
    core::Prediction expected = predictor.analyzeLoop(
        asm_("ADD RAX, RBX\nIMUL RCX, RAX"));
    EXPECT_NE(response.body.find(
                  "\"block_throughput\":" +
                  xmlFormatDouble(expected.block_throughput)),
              std::string::npos)
        << response.body;
    EXPECT_NE(response.body.find("\"bottleneck\":\"" +
                                 expected.bottleneck + "\""),
              std::string::npos);

    // Unknown mnemonics and missing parameters are 400s.
    EXPECT_EQ(
        service->handle(get("/predict?uarch=SKL&asm=BOGUS%20RAX"))
            .status,
        400);
    EXPECT_EQ(service->handle(get("/predict?uarch=SKL")).status, 400);
    EXPECT_EQ(service->handle(get("/predict?asm=NOP")).status, 400);
}

TEST(Service, PostPredictUsesBody)
{
    auto service = makeService();
    HttpRequest request;
    request.method = "POST";
    request.target = "/predict?uarch=SKL";
    request.path = "/predict";
    request.query["uarch"] = "SKL";
    request.body = "ADD RAX, RBX";
    HttpResponse response = service->handle(request);
    EXPECT_EQ(response.status, 200) << response.body;
    EXPECT_NE(response.body.find("\"block_throughput\":"),
              std::string::npos);

    // Non-predict endpoints reject POST.
    HttpRequest bad = request;
    bad.target = "/search";
    bad.path = "/search";
    EXPECT_EQ(service->handle(bad).status, 405);
}

TEST(Service, UnknownEndpointIs404)
{
    auto service = makeService();
    EXPECT_EQ(service->handle(get("/nope")).status, 404);
}

// ---------------------------------------------------------------------
// Cache + metrics behaviour.
// ---------------------------------------------------------------------

TEST(Service, RepeatedGetHitsCacheWithIdenticalBody)
{
    auto service = makeService();
    const std::string target = "/instr/ADD_R64_R64?uarch=SKL";
    HttpResponse first = service->handle(get(target));
    HttpResponse second = service->handle(get(target));
    EXPECT_EQ(first.status, 200);
    EXPECT_FALSE(first.cache_hit);
    EXPECT_TRUE(second.cache_hit);
    EXPECT_EQ(first.body, second.body);

    auto metrics = service->metrics(Endpoint::Instr);
    EXPECT_EQ(metrics.requests, 2u);
    EXPECT_EQ(metrics.cache_hits, 1u);
    EXPECT_EQ(metrics.errors, 0u);

    auto cache = service->cacheStats();
    EXPECT_EQ(cache.hits, 1u);
    EXPECT_EQ(cache.insertions, 1u);
}

TEST(Service, ErrorsAreCountedAndNotCached)
{
    auto service = makeService();
    EXPECT_EQ(service->handle(get("/instr/NO_SUCH")).status, 404);
    EXPECT_EQ(service->handle(get("/instr/NO_SUCH")).status, 404);
    auto metrics = service->metrics(Endpoint::Instr);
    EXPECT_EQ(metrics.requests, 2u);
    EXPECT_EQ(metrics.errors, 2u);
    EXPECT_EQ(metrics.cache_hits, 0u);
    EXPECT_EQ(service->cacheStats().insertions, 0u);
}

TEST(Service, StatsEndpointExposesMetricsAndCache)
{
    auto service = makeService();
    service->handle(get("/healthz"));
    HttpResponse response = service->handle(get("/stats"));
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("\"/healthz\":{\"requests\":1"),
              std::string::npos)
        << response.body;
    EXPECT_NE(response.body.find("\"cache\":{"), std::string::npos);
}

// ---------------------------------------------------------------------
// Concurrency: N threads hammer the service; every response must be
// identical to the single-threaded answer.
// ---------------------------------------------------------------------

TEST(ServiceConcurrency, HammeredEndpointsStaySnapshotIdentical)
{
    auto service = makeService();
    const std::vector<std::string> targets = {
        "/healthz",
        "/uarchs",
        "/instr/ADD_R64_R64",
        "/instr/ADD_R64_R64?uarch=SKL",
        "/search?uarch=SKL&mnemonic=ADD",
        "/search?uses=p0&limit=5",
        "/diff?a=NHM&b=SKL",
        "/predict?uarch=SKL&asm=ADD%20RAX,%20RBX",
    };
    std::vector<std::string> baseline;
    for (const std::string &target : targets)
        baseline.push_back(service->handle(get(target)).body);

    std::atomic<size_t> mismatches{0};
    ThreadPool pool(8);
    pool.parallelFor(800, [&](size_t i, size_t) {
        size_t pick = i % targets.size();
        HttpResponse response = service->handle(get(targets[pick]));
        if (response.status != 200 ||
            response.body != baseline[pick])
            ++mismatches;
    });
    EXPECT_EQ(mismatches.load(), 0u);

    // The hammering must have been served mostly from cache.
    auto cache = service->cacheStats();
    EXPECT_GT(cache.hits, 0u);
    EXPECT_EQ(service->metrics(Endpoint::Search).errors, 0u);
}

// ---------------------------------------------------------------------
// Socket end-to-end.
// ---------------------------------------------------------------------

/** Blocking loopback HTTP GET; returns the full wire response. */
std::string
httpGet(uint16_t port, const std::string &target)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) < 0) {
        ::close(fd);
        return "";
    }
    std::string request = "GET " + target +
                          " HTTP/1.1\r\nHost: localhost\r\n\r\n";
    size_t sent = 0;
    while (sent < request.size()) {
        ssize_t n = ::send(fd, request.data() + sent,
                           request.size() - sent, 0);
        if (n <= 0)
            break;
        sent += static_cast<size_t>(n);
    }
    std::string response;
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0)
        response.append(chunk, static_cast<size_t>(n));
    ::close(fd);
    return response;
}

TEST(HttpServerSocket, ServesRequestsOnEphemeralPort)
{
    auto service = makeService();
    server::HttpServer http(*service);
    http.start();
    ASSERT_GT(http.port(), 0);

    std::string health = httpGet(http.port(), "/healthz");
    EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);

    std::string instr =
        httpGet(http.port(), "/instr/ADD_R64_R64?uarch=SKL");
    EXPECT_NE(instr.find("\"uarch\":\"SKL\""), std::string::npos);

    // Second fetch is served from the cache, visibly so.
    std::string cached =
        httpGet(http.port(), "/instr/ADD_R64_R64?uarch=SKL");
    EXPECT_NE(cached.find("X-Cache: hit"), std::string::npos);

    std::string missing = httpGet(http.port(), "/instr/NO_SUCH");
    EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

    http.stop();
    EXPECT_FALSE(http.running());
}

TEST(HttpServerSocket, ConcurrentClientsGetConsistentAnswers)
{
    auto service = makeService();
    server::HttpServer http(*service);
    http.start();

    std::string baseline = httpGet(http.port(), "/healthz");
    ASSERT_NE(baseline.find("200 OK"), std::string::npos);

    std::atomic<size_t> mismatches{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 8; ++t) {
        clients.emplace_back([&] {
            for (int i = 0; i < 10; ++i)
                if (httpGet(http.port(), "/healthz") != baseline)
                    ++mismatches;
        });
    }
    for (std::thread &client : clients)
        client.join();
    // /healthz is uncached, so every response was freshly rendered;
    // all of them must still be byte-identical.
    EXPECT_EQ(mismatches.load(), 0u);

    http.stop();
}

TEST(HttpServerSocket, MalformedRequestGets400)
{
    auto service = makeService();
    server::HttpServer http(*service);
    http.start();

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(http.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    const char *garbage = "NOT-HTTP\r\n\r\n";
    ASSERT_GT(::send(fd, garbage, std::strlen(garbage), 0), 0);
    std::string response;
    char chunk[1024];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0)
        response.append(chunk, static_cast<size_t>(n));
    ::close(fd);
    EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);

    http.stop();
}

} // namespace
} // namespace uops::test
