/**
 * @file
 * Shared fixtures and helpers for the test suites.
 */

#ifndef UOPS_TESTS_TEST_UTIL_H
#define UOPS_TESTS_TEST_UTIL_H

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "isa/kernel.h"
#include "isa/parser.h"
#include "sim/harness.h"
#include "support/status.h"
#include "uarch/timing_db.h"

namespace uops::test {

/** Process-wide bundled instruction database. */
inline const isa::InstrDb &
defaultDb()
{
    static const std::unique_ptr<isa::InstrDb> db = isa::buildDefaultDb();
    return *db;
}

/** Cached timing database per uarch. */
inline const uarch::TimingDb &
timingDb(uarch::UArch arch)
{
    static std::map<uarch::UArch, std::unique_ptr<uarch::TimingDb>> dbs;
    auto it = dbs.find(arch);
    if (it == dbs.end())
        it = dbs.emplace(arch, std::make_unique<uarch::TimingDb>(
                                   defaultDb(), arch))
                 .first;
    return *it->second;
}

/** Assemble a newline-separated listing against the default DB. */
inline isa::Kernel
asm_(const std::string &listing)
{
    return isa::assemble(defaultDb(), listing);
}

/** Measurement with default options on the given uarch. */
inline sim::Measurement
measure(uarch::UArch arch, const std::string &listing,
        sim::HarnessOptions options = {})
{
    sim::MeasurementHarness harness(timingDb(arch), options);
    return harness.measure(asm_(listing));
}

} // namespace uops::test

#endif // UOPS_TESTS_TEST_UTIL_H
