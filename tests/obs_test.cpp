/**
 * @file
 * Unit tests for the observability layer (support/obs): metrics
 * instruments and registry exposition, the JSON-lines structured
 * logger, and the tracing primitives (trace IDs, span sets, Chrome
 * trace sink).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs_util.h"
#include "support/obs/log.h"
#include "support/obs/metrics.h"
#include "support/obs/trace.h"
#include "support/thread_pool.h"

namespace uops::test {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Instruments.
// ---------------------------------------------------------------------

TEST(ObsMetrics, CounterAndGaugeBasics)
{
    obs::Counter counter;
    EXPECT_EQ(counter.value(), 0u);
    counter.inc();
    counter.inc(41);
    EXPECT_EQ(counter.value(), 42u);

    obs::Gauge gauge;
    EXPECT_EQ(gauge.value(), 0.0);
    gauge.set(7.5);
    EXPECT_EQ(gauge.value(), 7.5);
    gauge.add(-2.5);
    EXPECT_EQ(gauge.value(), 5.0);
}

TEST(ObsMetrics, HistogramBucketMath)
{
    // Bucket 0 is exactly zero; bucket i covers (2^(i-1), 2^i - 1].
    EXPECT_EQ(obs::Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(obs::Histogram::bucketIndex(1), 1u);
    EXPECT_EQ(obs::Histogram::bucketIndex(2), 2u);
    EXPECT_EQ(obs::Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(obs::Histogram::bucketIndex(4), 3u);
    EXPECT_EQ(obs::Histogram::bucketUpperBound(0), 0u);
    EXPECT_EQ(obs::Histogram::bucketUpperBound(1), 1u);
    EXPECT_EQ(obs::Histogram::bucketUpperBound(2), 3u);
    EXPECT_EQ(obs::Histogram::bucketUpperBound(3), 7u);

    // Values past the last finite bound land in the open last bucket.
    obs::Histogram histogram;
    histogram.observe(~0ull);
    auto snapshot = histogram.snapshot();
    EXPECT_EQ(snapshot.buckets[obs::Histogram::kBuckets - 1], 1u);
}

TEST(ObsMetrics, HistogramQuantilesAreConservative)
{
    obs::Histogram histogram;
    auto empty = histogram.snapshot();
    EXPECT_EQ(empty.count, 0u);
    EXPECT_FALSE(empty.quantile(0.5).has_value());

    for (uint64_t v : {1ull, 2ull, 3ull, 100ull})
        histogram.observe(v);
    auto snapshot = histogram.snapshot();
    EXPECT_EQ(snapshot.count, 4u);
    EXPECT_EQ(snapshot.sum, 106u);
    // p50 falls in the bucket holding 2 and 3 (upper bound 3); p99
    // must cover the outlier's bucket ceiling, never undershoot it.
    EXPECT_EQ(snapshot.quantile(0.5), std::optional<uint64_t>(3));
    ASSERT_TRUE(snapshot.quantile(0.99).has_value());
    EXPECT_GE(*snapshot.quantile(0.99), 100u);
}

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

TEST(ObsRegistry, RegisterOrFetchIsIdempotent)
{
    obs::Registry registry;
    obs::Counter &a =
        registry.counter("uops_test_total", "help", {{"k", "v"}});
    obs::Counter &b =
        registry.counter("uops_test_total", "ignored", {{"k", "v"}});
    EXPECT_EQ(&a, &b);

    // Label order must not matter: one series, not two.
    obs::Counter &c = registry.counter(
        "uops_pair_total", "help", {{"a", "1"}, {"b", "2"}});
    obs::Counter &d = registry.counter(
        "uops_pair_total", "help", {{"b", "2"}, {"a", "1"}});
    EXPECT_EQ(&c, &d);
}

TEST(ObsRegistry, ExpositionRoundTrip)
{
    obs::Registry registry;
    registry.counter("uops_requests_total", "Requests",
                     {{"endpoint", "/predict"}})
        .inc(3);
    registry.counter("uops_requests_total", "Requests",
                     {{"endpoint", "/stats"}})
        .inc(1);
    registry.gauge("uops_generation", "Serving generation").set(17);
    obs::Histogram &histogram =
        registry.histogram("uops_latency_us", "Latency");
    histogram.observe(0);
    histogram.observe(5);
    histogram.observe(1000);
    registry.gaugeCallback("uops_inflight", "Inflight", {},
                           [] { return 2.0; });
    registry.counterCallback("uops_evictions_total", "Evictions",
                             {{"cache", "response"}},
                             [] { return 9.0; });

    Exposition parsed = parseExposition(registry.renderPrometheus());

    EXPECT_EQ(parsed
                  .series["uops_requests_total"
                          "{endpoint=\"/predict\"}"],
              3.0);
    EXPECT_EQ(
        parsed.series["uops_requests_total{endpoint=\"/stats\"}"],
        1.0);
    EXPECT_EQ(parsed.series["uops_generation"], 17.0);
    EXPECT_EQ(parsed.series["uops_inflight"], 2.0);
    EXPECT_EQ(
        parsed.series["uops_evictions_total{cache=\"response\"}"],
        9.0);

    // Histogram: cumulative buckets, +Inf closes at count, sum/count
    // series present, TYPE declared.
    EXPECT_EQ(parsed.series["uops_latency_us_count"], 3.0);
    EXPECT_EQ(parsed.series["uops_latency_us_sum"], 1005.0);
    EXPECT_EQ(parsed.series["uops_latency_us_bucket{le=\"0\"}"], 1.0);
    EXPECT_EQ(parsed.series["uops_latency_us_bucket{le=\"7\"}"], 2.0);
    EXPECT_EQ(parsed.series["uops_latency_us_bucket{le=\"+Inf\"}"],
              3.0);
    EXPECT_EQ(parsed.type["uops_latency_us"], "histogram");
    EXPECT_EQ(parsed.type["uops_requests_total"], "counter");
    EXPECT_EQ(parsed.type["uops_generation"], "gauge");
    EXPECT_EQ(parsed.help["uops_requests_total"], "Requests");

    // Cumulativity across every bucket in numeric le order (the map
    // iterates keys lexicographically, which scrambles the bounds).
    double prev = 0;
    for (size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
        std::string le =
            i + 1 == obs::Histogram::kBuckets
                ? "+Inf"
                : std::to_string(obs::Histogram::bucketUpperBound(i));
        std::string key =
            "uops_latency_us_bucket{le=\"" + le + "\"}";
        ASSERT_TRUE(parsed.series.count(key)) << key;
        double value = parsed.series[key];
        EXPECT_GE(value, prev) << key;
        prev = value;
    }
    EXPECT_EQ(prev, 3.0);   // +Inf bucket equals _count
}

TEST(ObsRegistry, EscapesLabelValues)
{
    obs::Registry registry;
    registry.counter("uops_weird_total", "Weird",
                     {{"path", "a\\b\"c\nd"}})
        .inc();
    std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find("path=\"a\\\\b\\\"c\\nd\""),
              std::string::npos)
        << text;
    // The raw control byte must not survive into the exposition.
    EXPECT_EQ(text.find("c\nd"), std::string::npos);
}

TEST(ObsRegistry, ConcurrentRegistrationAndRecording)
{
    obs::Registry registry;
    ThreadPool pool(8);
    pool.parallelFor(64, [&](size_t i, size_t) {
        obs::LabelSet labels{
            {"worker", std::to_string(i % 4)}};
        registry
            .counter("uops_conc_total", "Concurrent", labels)
            .inc();
        registry.histogram("uops_conc_us", "Concurrent").observe(i);
    });
    Exposition parsed = parseExposition(registry.renderPrometheus());
    double total = 0;
    for (int w = 0; w < 4; ++w)
        total += parsed.series["uops_conc_total{worker=\"" +
                               std::to_string(w) + "\"}"];
    EXPECT_EQ(total, 64.0);
    EXPECT_EQ(parsed.series["uops_conc_us_count"], 64.0);
}

// ---------------------------------------------------------------------
// Structured logger.
// ---------------------------------------------------------------------

TEST(ObsLog, EmitsValidJsonWithAllFieldTypes)
{
    obs::Logger::Options options;
    options.min_level = obs::LogLevel::Debug;
    obs::Logger logger(options);
    std::vector<std::string> lines;
    logger.setSink([&](std::string_view line) {
        lines.emplace_back(line);
    });

    logger.event(obs::LogLevel::Info, "test", "kitchen_sink")
        .str("quoted", "a\"b\\c\nd\te\x01f")
        .num("u", static_cast<uint64_t>(42))
        .num("i", static_cast<int64_t>(-7))
        .num("d", 1.5)
        .num("nan", std::nan(""))
        .boolean("yes", true)
        .nullField("nothing");

    ASSERT_EQ(lines.size(), 1u);
    const std::string &line = lines[0];
    EXPECT_TRUE(isValidJsonObject(line)) << line;
    EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos);
    EXPECT_NE(line.find("\"component\":\"test\""), std::string::npos);
    EXPECT_NE(line.find("\"event\":\"kitchen_sink\""),
              std::string::npos);
    EXPECT_NE(line.find("\"i\":-7"), std::string::npos);
    // Non-finite doubles must degrade to null, not invalid JSON.
    EXPECT_NE(line.find("\"nan\":null"), std::string::npos);
    EXPECT_NE(line.find("\"nothing\":null"), std::string::npos);
}

TEST(ObsLog, LevelFilteringIsComplete)
{
    obs::Logger::Options options;
    options.min_level = obs::LogLevel::Warn;
    obs::Logger logger(options);
    std::vector<std::string> lines;
    logger.setSink([&](std::string_view line) {
        lines.emplace_back(line);
    });

    EXPECT_FALSE(logger.enabled(obs::LogLevel::Info));
    EXPECT_TRUE(logger.enabled(obs::LogLevel::Error));
    logger.event(obs::LogLevel::Info, "test", "dropped")
        .str("k", "v");
    logger.event(obs::LogLevel::Error, "test", "kept");
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"kept\""), std::string::npos);

    logger.setMinLevel(obs::LogLevel::Debug);
    logger.event(obs::LogLevel::Debug, "test", "now_visible");
    EXPECT_EQ(lines.size(), 2u);
}

TEST(ObsLog, RateLimiterSuppresses)
{
    obs::Logger::Options options;
    options.min_level = obs::LogLevel::Debug;
    options.max_lines_per_second = 5;
    obs::Logger logger(options);
    std::vector<std::string> lines;
    logger.setSink([&](std::string_view line) {
        lines.emplace_back(line);
    });
    for (int i = 0; i < 50; ++i)
        logger.event(obs::LogLevel::Info, "test", "burst")
            .num("i", static_cast<int64_t>(i));
    // The burst almost always lands in one 1s window (5 emitted, 45
    // suppressed); a scheduler hiccup may straddle two windows, which
    // adds at most one more window's worth plus a summary line.
    EXPECT_LE(lines.size(), 11u);
    EXPECT_GE(logger.suppressed(), 39u);
    for (const std::string &line : lines)
        EXPECT_TRUE(isValidJsonObject(line)) << line;
}

TEST(ObsLog, ConcurrentLinesStayWellFormed)
{
    obs::Logger::Options options;
    options.min_level = obs::LogLevel::Debug;
    obs::Logger logger(options);
    std::mutex sink_mutex;
    std::vector<std::string> lines;
    logger.setSink([&](std::string_view line) {
        std::lock_guard<std::mutex> lock(sink_mutex);
        lines.emplace_back(line);
    });

    ThreadPool pool(8);
    pool.parallelFor(256, [&](size_t i, size_t worker) {
        logger
            .event(obs::LogLevel::Info, "hammer", "line")
            .num("i", static_cast<uint64_t>(i))
            .num("worker", static_cast<uint64_t>(worker))
            .str("payload", "x\"y\\z");
    });

    ASSERT_EQ(lines.size(), 256u);
    std::set<std::string> distinct;
    for (const std::string &line : lines) {
        EXPECT_TRUE(isValidJsonObject(line)) << line;
        distinct.insert(line);
    }
    // Every line is one whole event: no interleaving, no loss.
    EXPECT_EQ(distinct.size(), 256u);
}

// ---------------------------------------------------------------------
// Tracing.
// ---------------------------------------------------------------------

TEST(ObsTrace, TraceIdsAreWellFormedAndDistinct)
{
    std::set<std::string> seen;
    for (int i = 0; i < 1000; ++i) {
        std::string id = obs::newTraceId();
        ASSERT_EQ(id.size(), 16u);
        for (char c : id)
            ASSERT_TRUE(std::isxdigit(static_cast<unsigned char>(c)) &&
                        !std::isupper(static_cast<unsigned char>(c)))
                << id;
        seen.insert(id);
    }
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(ObsTrace, SpanNestingDepthsAndOrder)
{
    obs::SpanSet spans("test", nullptr);
    {
        auto root = spans.span("root");
        {
            auto child = spans.span("child");
            auto grandchild = spans.span("grandchild");
        }
        auto sibling = spans.span("sibling");
    }
    const auto &entries = spans.entries();
    ASSERT_EQ(entries.size(), 4u);
    EXPECT_EQ(entries[0].name, "root");
    EXPECT_EQ(entries[0].depth, 0u);
    EXPECT_EQ(entries[1].name, "child");
    EXPECT_EQ(entries[1].depth, 1u);
    EXPECT_EQ(entries[2].name, "grandchild");
    EXPECT_EQ(entries[2].depth, 2u);
    EXPECT_EQ(entries[3].name, "sibling");
    EXPECT_EQ(entries[3].depth, 1u);
    // Children start no earlier than their parent and end within it.
    EXPECT_GE(entries[1].start_us, entries[0].start_us);
    EXPECT_LE(entries[1].start_us + entries[1].dur_us,
              entries[0].start_us + entries[0].dur_us);
}

TEST(ObsTrace, ScopeEndIsIdempotentAndMovable)
{
    obs::SpanSet spans("test", nullptr);
    obs::SpanSet::Scope inert;   // default: no set, all no-ops
    inert.end();

    auto outer = spans.span("moved");
    obs::SpanSet::Scope stolen = std::move(outer);
    outer.end();   // moved-from: must not close the span
    EXPECT_EQ(spans.entries()[0].dur_us, 0u);
    stolen.end();
    stolen.end();  // second end: no double close
    ASSERT_EQ(spans.entries().size(), 1u);
}

TEST(ObsTrace, ChromeTracerWritesLoadableJson)
{
    auto path = fs::temp_directory_path() /
                ("obs_trace_" +
                 std::to_string(::getpid()) + ".json");
    fs::remove(path);
    {
        obs::ChromeTracer tracer(path.string());
        tracer.complete("alpha", "test", 10, 5);
        tracer.counter("queue", 3.0);
        EXPECT_EQ(tracer.bufferedEvents(), 2u);
        tracer.flush();
        EXPECT_EQ(tracer.bufferedEvents(), 0u);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream text;
    text << in.rdbuf();
    std::string doc = text.str();
    // One-document JSON: the validator accepts it whole.
    std::string flat;
    for (char c : doc)
        if (c != '\n')
            flat += c;
    EXPECT_TRUE(isValidJsonObject(flat)) << doc;
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"alpha\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
    fs::remove(path);
}

TEST(ObsTrace, SpanSetForwardsClosedSpansToTracer)
{
    auto path = fs::temp_directory_path() /
                ("obs_spans_" +
                 std::to_string(::getpid()) + ".json");
    obs::ChromeTracer tracer(path.string());
    {
        obs::SpanSet spans("unit", &tracer);
        auto scope = spans.span("forwarded");
    }
    EXPECT_EQ(tracer.bufferedEvents(), 1u);
    fs::remove(path);
}

} // namespace
} // namespace uops::test
