/**
 * @file
 * Golden conformance suite for the /predict kernel compute service.
 *
 * For a committed corpus of kernels — dependency chains, parallel and
 * port-conflicting blocks, macro-fused pairs, divider kernels,
 * store/load roundtrips, elimination idioms — the served prediction
 * must be *bit-identical* to driving the simulation stack directly
 * (sim::BlockPredictor over sim::Pipeline), on every one of the nine
 * microarchitectures, and memoized (cache-hit) responses must be
 * byte-identical to cold ones. Any drift here means the HTTP layer
 * changed the numbers, which is the one thing a serving layer must
 * never do.
 */

#include <gtest/gtest.h>

#include "db/catalog.h"
#include "server/service.h"
#include "sim/block_predict.h"
#include "support/xml.h"
#include "test_util.h"

namespace uops::test {
namespace {

using server::HttpRequest;
using server::HttpResponse;

/** The committed corpus. Base-ISA / SSE2 only, so every kernel is
 *  valid on all nine generations (Table 1). */
const std::vector<std::string> &
corpus()
{
    static const std::vector<std::string> kernels = {
        // Single instructions and latency chains.
        "ADD RAX, RBX",
        "ADD RAX, RBX\nADD RBX, RAX",
        "ADD RAX, RAX\nADD RAX, RAX\nADD RAX, RAX",
        "ADD RAX, 1\nADD RAX, 2\nADD RAX, 3",
        "IMUL RAX, RBX",
        "IMUL RAX, RBX\nIMUL RBX, RAX",
        "SHL RAX, 3\nSHL RBX, 5",
        // Independent blocks (port pressure, no dependencies).
        "ADD RAX, RBX\nADD RCX, RDX\nADD RSI, RDI",
        "IMUL RAX, RBX\nIMUL RCX, RDX\nADD RSI, RDI",
        "INC RAX\nDEC RBX\nNEG RCX",
        // Port-conflict blocks (many µops fighting few ports).
        "IMUL RAX, RBX\nIMUL RCX, RDX\nIMUL RSI, RDI",
        "SHL RAX, 1\nSHL RBX, 2\nSHL RCX, 3\nSHL RDX, 4",
        // Elimination idioms.
        "XOR RAX, RAX",
        "XOR RAX, RAX\nADD RAX, RBX",
        "MOV RAX, RBX",
        "MOV RAX, RBX\nMOV RBX, RCX\nMOV RCX, RAX",
        "NOP",
        "NOP\nNOP\nNOP\nNOP",
        // Macro-fused pairs (CMP/TEST + Jcc on every generation).
        "CMP RAX, RBX\nJNZ 0",
        "TEST RAX, RBX\nJZ 0",
        "ADD RAX, RBX\nCMP RAX, RCX\nJNZ 0",
        // Divider kernels (not fully pipelined, value-dependent).
        "DIV EBX",
        "DIV EBX\nDIV ECX",
        "DIV EBX\nADD RAX, RCX\nADD RCX, RDX",
        // Loads, stores, store/load roundtrips.
        "MOV RAX, [RBX]",
        "MOV [RBX], RAX",
        "MOV [RBX+64], RAX\nMOV RCX, [RBX+64]",
        "ADD RAX, [RBX]\nADD [RCX], RDX",
        "MOV [RSI+8], RDI\nMOV RDI, [RSI+8]\nADD RDI, 1",
        // SSE/SSE2 vector blocks.
        "MOVAPS XMM0, XMM1",
        "ADDPS XMM0, XMM1\nADDPS XMM1, XMM2",
        "MULPS XMM0, XMM1\nADDPS XMM2, XMM0",
        "PADDD XMM0, XMM1\nPAND XMM2, XMM3",
        // A mixed block exercising most units at once.
        "ADD RAX, RBX\nIMUL RCX, RAX\nXOR RDX, RDX\n"
        "MOV R8, [R9]\nCMP R8, RCX\nJNZ 0",
    };
    return kernels;
}

/** A thin catalog (ADD/XOR on Skylake) — enough for the static
 *  analysis of pure-ADD kernels and deliberately *not* covering the
 *  rest, so both analysis paths are exercised. */
std::shared_ptr<const db::DatabaseCatalog>
thinCatalog()
{
    static const auto catalog = [] {
        core::BatchOptions options;
        options.num_threads = 2;
        options.characterizer.filter =
            [](const isa::InstrVariant &v) {
                return v.mnemonic() == "ADD" || v.mnemonic() == "XOR";
            };
        return db::runCatalogSweep(defaultDb(),
                                   {uarch::UArch::Skylake}, options,
                                   nullptr);
    }();
    return catalog;
}

std::unique_ptr<server::QueryService>
makeService()
{
    return std::make_unique<server::QueryService>(thinCatalog(),
                                                  defaultDb());
}

HttpRequest
postPredict(const std::string &uarch, const std::string &listing)
{
    HttpRequest request;
    request.method = "POST";
    request.target = "/predict?uarch=" + uarch;
    request.path = "/predict";
    request.query["uarch"] = uarch;
    request.body = listing;
    return request;
}

/** The exact JSON fragment handlePredict renders for @p m — built
 *  with the same double formatter the server uses, so comparison is
 *  textual bit-identity, not approximate. */
std::string
simulationJson(const sim::Measurement &m, int num_ports)
{
    std::string out = "\"block_throughput\":" +
                      xmlFormatDouble(m.cycles) +
                      ",\"simulation\":{\"cycles_per_iteration\":" +
                      xmlFormatDouble(m.cycles) + ",\"uops_issued\":" +
                      xmlFormatDouble(m.uops_issued) +
                      ",\"uops_eliminated\":" +
                      xmlFormatDouble(m.uops_eliminated) +
                      ",\"port_pressure\":[";
    for (int p = 0; p < num_ports; ++p) {
        if (p > 0)
            out += ',';
        out += xmlFormatDouble(m.port_uops[static_cast<size_t>(p)]);
    }
    out += "]}";
    return out;
}

// ---------------------------------------------------------------------
// Served output == direct pipeline, all nine uarches.
// ---------------------------------------------------------------------

TEST(PredictConformance, ServedEqualsDirectSimulationOnAllUArches)
{
    auto service = makeService();
    for (uarch::UArch arch : uarch::allUArches()) {
        std::string short_name = uarch::uarchShortName(arch);
        // Same defaults the service's engine uses.
        sim::BlockPredictor direct(defaultDb(), arch);
        int num_ports = uarch::uarchInfo(arch).num_ports;
        for (const std::string &listing : corpus()) {
            HttpResponse response =
                service->handle(postPredict(short_name, listing));
            ASSERT_EQ(response.status, 200)
                << short_name << ": " << listing << "\n"
                << response.body;
            sim::Measurement expected = direct.predict(asm_(listing));
            EXPECT_NE(response.body.find(
                          simulationJson(expected, num_ports)),
                      std::string::npos)
                << short_name << ": " << listing << "\n"
                << response.body;
        }
    }
}

// ---------------------------------------------------------------------
// Memoization: hits byte-identical to cold, across spellings.
// ---------------------------------------------------------------------

TEST(PredictConformance, MemoizedResponsesAreByteIdenticalToCold)
{
    auto service = makeService();
    for (const std::string &listing : corpus()) {
        HttpResponse cold =
            service->handle(postPredict("SKL", listing));
        ASSERT_EQ(cold.status, 200) << listing << "\n" << cold.body;
        EXPECT_FALSE(cold.cache_hit) << listing;

        HttpResponse warm =
            service->handle(postPredict("SKL", listing));
        EXPECT_TRUE(warm.cache_hit) << listing;
        EXPECT_EQ(warm.body, cold.body) << listing;
        EXPECT_EQ(warm.status, cold.status);
    }
}

TEST(PredictConformance, SpellingVariantsShareOneMemoEntry)
{
    auto service = makeService();
    // Keyed by the kernel *fingerprint*, not the request text: the
    // ';'-separated, comment-laden, re-spaced spelling must hit the
    // entry the canonical POST populated, byte-identically.
    HttpResponse cold = service->handle(
        postPredict("SKL", "ADD RAX, RBX\nIMUL RCX, RAX"));
    ASSERT_EQ(cold.status, 200) << cold.body;
    HttpResponse variant = service->handle(postPredict(
        "SKL", "  ADD   RAX,RBX   # comment\n\nIMUL RCX, RAX\n"));
    EXPECT_TRUE(variant.cache_hit);
    EXPECT_EQ(variant.body, cold.body);
}

TEST(PredictConformance, MemoIsEpochKeyed)
{
    // A swap to a byte-identical catalog still advances the epoch;
    // the memo must re-render (the analysis half depends on the
    // generation), and the recomputation must be byte-identical for
    // an identical generation.
    auto service = makeService();
    HttpResponse cold = service->handle(
        postPredict("SKL", "ADD RAX, RBX\nADD RBX, RAX"));
    ASSERT_EQ(cold.status, 200);
    service->swapCatalog(thinCatalog());
    HttpResponse after =
        service->handle(postPredict("SKL", "ADD RAX, RBX\nADD RBX, RAX"));
    EXPECT_FALSE(after.cache_hit);
    EXPECT_EQ(after.body, cold.body);
}

// ---------------------------------------------------------------------
// Analysis coverage split.
// ---------------------------------------------------------------------

TEST(PredictConformance, AnalysisPresentOnlyUnderCatalogCoverage)
{
    auto service = makeService();
    // Covered by the thin catalog: full static analysis alongside
    // the simulation.
    HttpResponse covered = service->handle(
        postPredict("SKL", "ADD RAX, RBX\nXOR RCX, RCX"));
    ASSERT_EQ(covered.status, 200) << covered.body;
    EXPECT_NE(covered.body.find("\"analysis\":{"), std::string::npos)
        << covered.body;
    EXPECT_NE(covered.body.find("\"bottleneck\":"), std::string::npos);

    // IMUL is not in the thin catalog: simulation still answers,
    // analysis degrades to null with the reason.
    HttpResponse uncovered =
        service->handle(postPredict("SKL", "IMUL RCX, RAX"));
    ASSERT_EQ(uncovered.status, 200) << uncovered.body;
    EXPECT_NE(uncovered.body.find("\"analysis\":null"),
              std::string::npos)
        << uncovered.body;
    EXPECT_NE(uncovered.body.find(
                  "not present in the characterization"),
              std::string::npos)
        << uncovered.body;

    // A generation the catalog does not serve at all behaves the
    // same way — /predict works on all nine uarches regardless of
    // catalog contents.
    HttpResponse other_arch =
        service->handle(postPredict("HSW", "ADD RAX, RBX"));
    ASSERT_EQ(other_arch.status, 200) << other_arch.body;
    EXPECT_NE(other_arch.body.find("\"analysis\":null"),
              std::string::npos);
}

} // namespace
} // namespace uops::test
