/**
 * @file
 * Tests for the Algorithm-2 measurement infrastructure details:
 * marker snapshots, unroll configurations, repetitions, warm-up,
 * serializing behaviour, and capacity limits of the simulated core.
 */

#include <gtest/gtest.h>

#include "sim/pipeline.h"
#include "test_util.h"

namespace uops::test {
namespace {

using uarch::UArch;

TEST(Harness, MarkersSnapshotInProgramOrder)
{
    const auto &tdb = timingDb(UArch::Skylake);
    sim::Pipeline pipeline(tdb);
    auto kernel = asm_("ADD RAX, RBX\n"
                       "ADD RAX, RBX\n"
                       "ADD RAX, RBX\n"
                       "ADD RAX, RBX");
    auto r = pipeline.run(kernel, {0, 3});
    ASSERT_EQ(r.snapshots.size(), 2u);
    EXPECT_LE(r.snapshots[0].cycles, r.snapshots[1].cycles);
    EXPECT_LT(r.snapshots[0].instrs_retired,
              r.snapshots[1].instrs_retired);
    EXPECT_EQ(r.final.instrs_retired, 4);
}

TEST(Harness, CustomUnrollsGiveSameResult)
{
    // The differencing must be unroll-invariant for steady kernels.
    sim::HarnessOptions a;
    a.unroll_small = 10;
    a.unroll_large = 110;
    sim::HarnessOptions b;
    b.unroll_small = 20;
    b.unroll_large = 60;
    auto ma = measure(UArch::Haswell, "IMUL RAX, RBX", a);
    auto mb = measure(UArch::Haswell, "IMUL RAX, RBX", b);
    EXPECT_NEAR(ma.cycles, mb.cycles, 0.05);
    EXPECT_NEAR(ma.port_uops[1], mb.port_uops[1], 0.05);
}

TEST(Harness, RepetitionsAndWarmupAreStable)
{
    sim::HarnessOptions opts;
    opts.repetitions = 5;
    opts.warmup = true;
    auto m = measure(UArch::Skylake, "ADD RAX, RBX", opts);
    EXPECT_NEAR(m.cycles, 1.0, 0.02);
}

TEST(Harness, PortCountersPerBody)
{
    auto m = measure(UArch::Skylake, "PSHUFD XMM1, XMM2, 0\n"
                                     "PSHUFD XMM2, XMM3, 0");
    EXPECT_NEAR(m.port_uops[5], 2.0, 0.05); // both on port 5
    EXPECT_NEAR(m.uops_issued, 2.0, 0.1);
}

TEST(Harness, EliminatedUopsCounted)
{
    auto m = measure(UArch::Skylake, "XOR RAX, RAX\nNOP");
    EXPECT_NEAR(m.uops_eliminated, 2.0, 0.05);
    EXPECT_NEAR(m.totalPortUops(), 0.0, 0.01);
}

TEST(Harness, SerializingInstructionDrains)
{
    // A serializing instruction between two long-latency chains forces
    // completion: cycles per body far above the pipelined case.
    const auto &tdb = timingDb(UArch::Skylake);
    sim::Pipeline pipeline(tdb);
    auto with_fence = asm_("IMUL RAX, RBX\n"
                           "LFENCE\n"
                           "IMUL RCX, RBX");
    auto without = asm_("IMUL RAX, RBX\n"
                        "IMUL RCX, RBX");
    isa::Kernel k1, k2;
    for (int i = 0; i < 20; ++i) {
        k1.insert(k1.end(), with_fence.begin(), with_fence.end());
        k2.insert(k2.end(), without.begin(), without.end());
    }
    auto r1 = pipeline.run(k1);
    auto r2 = pipeline.run(k2);
    EXPECT_GT(r1.cycles, r2.cycles * 2);
}

TEST(Harness, RsCapacityLimitsParallelism)
{
    // A long-latency divider chain plus many independent adds: the
    // adds fill the reservation station; issue stalls, but everything
    // still completes and counters add up.
    std::string body = "DIVPS XMM1, XMM2\n";
    for (int i = 0; i < 12; ++i)
        body += "ADD RAX, R8\nADD RBX, R8\nADD RCX, R8\n";
    auto m = measure(UArch::Nehalem, body);
    EXPECT_NEAR(m.totalPortUops(), 37.0, 0.5); // 1 div + 36 adds
}

TEST(Harness, NoiseIsSeededAndReproducible)
{
    sim::HarnessOptions opts;
    opts.noise_stddev = 0.5;
    opts.noise_seed = 99;
    opts.repetitions = 3;
    auto a = measure(UArch::Skylake, "ADD RAX, RBX", opts);
    auto b = measure(UArch::Skylake, "ADD RAX, RBX", opts);
    EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
    opts.noise_seed = 100;
    auto c = measure(UArch::Skylake, "ADD RAX, RBX", opts);
    EXPECT_NE(a.cycles, c.cycles);
}

TEST(Harness, EmptyBodyPanics)
{
    sim::MeasurementHarness harness(timingDb(UArch::Skylake));
    EXPECT_THROW(harness.measure({}), PanicError);
}

TEST(Pipeline, DeadlockGuard)
{
    const auto &tdb = timingDb(UArch::Skylake);
    sim::SimOptions opts;
    opts.max_cycles = 50; // too small for this kernel
    sim::Pipeline pipeline(tdb, opts);
    isa::Kernel kernel;
    auto chain = asm_("IMUL RAX, RBX");
    for (int i = 0; i < 100; ++i)
        kernel.push_back(chain[0]);
    EXPECT_THROW(pipeline.run(kernel), PanicError);
}

TEST(Pipeline, MovElimPeriodConfigurable)
{
    const auto &tdb = timingDb(UArch::Skylake);
    sim::SimOptions no_elim;
    no_elim.mov_elim_period = 0;
    sim::Pipeline pipeline(tdb, no_elim);
    auto kernel = asm_("MOV RAX, RBX");
    isa::Kernel body;
    for (int i = 0; i < 50; ++i)
        body.push_back(kernel[0]);
    auto r = pipeline.run(body);
    // Without elimination every MOV executes.
    EXPECT_EQ(r.final.totalPortUops(), 50);
    EXPECT_EQ(r.final.uops_eliminated, 0);
}

} // namespace
} // namespace uops::test
