/**
 * @file
 * Tests for the paper's algorithms: blocking-instruction discovery
 * (5.1.1), port-usage inference (Algorithm 1), latency chains (5.2)
 * and throughput (5.3) — validated against the ground-truth timing
 * tables that drive the simulator.
 */

#include <gtest/gtest.h>

#include "core/blocking.h"
#include "core/latency.h"
#include "core/port_usage.h"
#include "core/throughput.h"
#include "test_util.h"

namespace uops::test {
namespace {

using core::BlockingFinder;
using core::BlockingSet;
using core::ChainInstruments;
using core::LatencyAnalyzer;
using core::PortUsageAnalyzer;
using core::ThroughputAnalyzer;
using uarch::PortMask;
using uarch::portMask;
using uarch::UArch;

/** Shared per-uarch analysis context (expensive: blocking discovery). */
struct Context
{
    explicit Context(UArch arch)
        : harness(timingDb(arch)),
          instruments(core::calibrateInstruments(harness)),
          finder(harness),
          sse_set(finder.find(false)),
          avx_set(uarchInfo(arch).hasExtension(isa::Extension::Avx)
                      ? finder.find(true)
                      : sse_set)
    {
    }

    sim::MeasurementHarness harness;
    ChainInstruments instruments;
    BlockingFinder finder;
    BlockingSet sse_set;
    BlockingSet avx_set;
};

Context &
context(UArch arch)
{
    static std::map<UArch, std::unique_ptr<Context>> cache;
    auto it = cache.find(arch);
    if (it == cache.end())
        it = cache.emplace(arch, std::make_unique<Context>(arch)).first;
    return *it->second;
}

core::PortUsageResult
portUsage(UArch arch, const std::string &variant_name)
{
    Context &ctx = context(arch);
    const auto *v = defaultDb().byName(variant_name);
    EXPECT_NE(v, nullptr) << variant_name;
    core::LatencyAnalyzer lat(ctx.harness, ctx.instruments);
    int max_lat = lat.analyze(*v).maxLatency();
    core::PortUsageAnalyzer analyzer(ctx.harness, ctx.sse_set,
                                     ctx.avx_set);
    return analyzer.analyze(*v, max_lat);
}

// ---------------------------------------------------------------------
// Chain instrument calibration.
// ---------------------------------------------------------------------

TEST(Calibration, InstrumentLatencies)
{
    Context &ctx = context(UArch::Skylake);
    EXPECT_NEAR(ctx.instruments.movsx_lat, 1.0, 0.05);
    EXPECT_NEAR(ctx.instruments.int_shuffle_lat, 1.0, 0.05);
    EXPECT_NEAR(ctx.instruments.fp_shuffle_lat, 1.0, 0.05);
    EXPECT_NEAR(ctx.instruments.load_lat, 4.0, 0.05);
    EXPECT_NEAR(ctx.instruments.xor_lat, 1.0, 0.05);
    EXPECT_NEAR(ctx.instruments.cmovb_lat, 1.0, 0.05); // 1-µop on SKL
}

TEST(Calibration, CmovIsTwoCyclesPreSkylake)
{
    Context &ctx = context(UArch::Haswell);
    EXPECT_NEAR(ctx.instruments.cmovb_lat, 2.0, 0.05); // 2-µop CMOV
}

// ---------------------------------------------------------------------
// Blocking-instruction discovery.
// ---------------------------------------------------------------------

TEST(Blocking, CoversAluAndVectorCombos)
{
    Context &ctx = context(UArch::Skylake);
    const auto &combos = ctx.sse_set.combos;
    EXPECT_TRUE(combos.count(portMask({0, 1, 5, 6}))); // ALU
    EXPECT_TRUE(combos.count(portMask({5})));          // shuffle
    EXPECT_TRUE(combos.count(portMask({0, 6})));       // shift/branch?
    EXPECT_TRUE(combos.count(portMask({2, 3})));       // load
    EXPECT_TRUE(combos.count(portMask({4})));          // store data
    EXPECT_TRUE(combos.count(portMask({2, 3, 7})));    // store address
}

TEST(Blocking, NehalemCombos)
{
    Context &ctx = context(UArch::Nehalem);
    const auto &combos = ctx.sse_set.combos;
    EXPECT_TRUE(combos.count(portMask({0, 1, 5}))); // ALU
    EXPECT_TRUE(combos.count(portMask({0, 5})));    // shift/shuffle
    EXPECT_TRUE(combos.count(portMask({2})));       // load
    EXPECT_TRUE(combos.count(portMask({3})));       // store address
    EXPECT_TRUE(combos.count(portMask({4})));       // store data
    EXPECT_TRUE(combos.count(portMask({5})));       // branch
}

TEST(Blocking, ChoosesHighThroughputBlockers)
{
    Context &ctx = context(UArch::Skylake);
    for (const auto &[mask, b] : ctx.sse_set.combos) {
        if (b.is_store)
            continue;
        // A blocking instruction must have throughput <= 1.05 cycles
        // (it must be able to keep its ports busy).
        EXPECT_LE(b.throughput,
                  1.05 * std::max(1, 1)) // tp 1 worst case (1 port)
            << uarch::portMaskName(mask) << " -> " << b.variant->name();
    }
}

TEST(Blocking, SseAndAvxSetsAreSeparate)
{
    Context &ctx = context(UArch::Skylake);
    for (const auto &[mask, b] : ctx.sse_set.combos)
        EXPECT_FALSE(b.variant->attrs().is_avx) << b.variant->name();
    for (const auto &[mask, b] : ctx.avx_set.combos) {
        bool legacy_vec = b.variant->hasVecOperand() &&
                          !b.variant->attrs().is_avx;
        EXPECT_FALSE(legacy_vec) << b.variant->name();
    }
}

// ---------------------------------------------------------------------
// Algorithm 1: port usage vs ground truth.
// ---------------------------------------------------------------------

TEST(PortUsage, SimpleAluOnSkylake)
{
    auto r = portUsage(UArch::Skylake, "ADD_R64_R64");
    EXPECT_EQ(r.usage.toString(), "1*p0156");
}

TEST(PortUsage, ShuffleOnSkylake)
{
    auto r = portUsage(UArch::Skylake, "PSHUFD_X_X_I8");
    EXPECT_EQ(r.usage.toString(), "1*p5");
}

TEST(PortUsage, LoadOpOnSkylake)
{
    auto r = portUsage(UArch::Skylake, "ADD_R64_M64");
    EXPECT_EQ(r.usage.toString(), "1*p23+1*p0156");
}

TEST(PortUsage, StoreOnSkylake)
{
    auto r = portUsage(UArch::Skylake, "MOV_M64_R64");
    EXPECT_EQ(r.usage.toString(), "1*p4+1*p237");
}

TEST(PortUsage, RmwOnHaswell)
{
    auto r = portUsage(UArch::Haswell, "ADD_M64_R64");
    EXPECT_EQ(r.usage.toString(), "1*p23+1*p4+1*p0156+1*p237");
}

// The Section 5.1 case studies: the naive (run-in-isolation) approach
// gets these wrong; Algorithm 1 recovers the truth.

TEST(PortUsage, PblendvbNehalem)
{
    // Ground truth: 2*p05. Fog-style: 1*p0 + 1*p5.
    auto r = portUsage(UArch::Nehalem, "PBLENDVB_X_X_Xi");
    EXPECT_EQ(r.usage.toString(), "2*p05");

    Context &ctx = context(UArch::Nehalem);
    PortUsageAnalyzer analyzer(ctx.harness, ctx.sse_set, ctx.avx_set);
    auto naive = analyzer.analyzeNaive(
        *defaultDb().byName("PBLENDVB_X_X_Xi"));
    EXPECT_EQ(naive.toString(), "1*p0+1*p5");
}

TEST(PortUsage, AdcHaswell)
{
    // Ground truth: 1*p06 + 1*p0156. Fog-style: 2*p0156.
    auto r = portUsage(UArch::Haswell, "ADC_R64_R64");
    EXPECT_EQ(r.usage.toString(), "1*p06+1*p0156");
}

TEST(PortUsage, Movq2dqSkylake)
{
    // Section 7.3.3: 1*p0 + 1*p015 (Fog: 1*p0 + 1*p15).
    auto r = portUsage(UArch::Skylake, "MOVQ2DQ_X_MM");
    EXPECT_EQ(r.usage.toString(), "1*p0+1*p015");

    Context &ctx = context(UArch::Skylake);
    PortUsageAnalyzer analyzer(ctx.harness, ctx.sse_set, ctx.avx_set);
    auto naive =
        analyzer.analyzeNaive(*defaultDb().byName("MOVQ2DQ_X_MM"));
    EXPECT_EQ(naive.toString(), "1*p0+1*p15");
}

TEST(PortUsage, Movdq2qHaswellAndSandyBridge)
{
    // Section 7.3.4: 1*p5 + 1*p015 on both uarches.
    auto hsw = portUsage(UArch::Haswell, "MOVDQ2Q_MM_X");
    EXPECT_EQ(hsw.usage.toString(), "1*p5+1*p015");
    auto snb = portUsage(UArch::SandyBridge, "MOVDQ2Q_MM_X");
    EXPECT_EQ(snb.usage.toString(), "1*p5+1*p015");
}

TEST(PortUsage, VhaddpdSkylake)
{
    // Section 7.2: 1*p01 + 2*p5 on Skylake.
    auto r = portUsage(UArch::Skylake, "VHADDPD_X_X_X");
    EXPECT_EQ(r.usage.toString(), "1*p01+2*p5");
}

TEST(PortUsage, AesdecAcrossGenerations)
{
    EXPECT_EQ(portUsage(UArch::Westmere, "AESDEC_X_X").usage.totalUops(),
              3);
    EXPECT_EQ(
        portUsage(UArch::SandyBridge, "AESDEC_X_X").usage.totalUops(),
        2);
    EXPECT_EQ(portUsage(UArch::Haswell, "AESDEC_X_X").usage.toString(),
              "1*p0");
    EXPECT_EQ(portUsage(UArch::Skylake, "AESDEC_X_X").usage.toString(),
              "1*p0");
}

TEST(PortUsage, BswapWidthsSkylake)
{
    // 32-bit: 1 µop; 64-bit: 2 µops (Section 7.2).
    EXPECT_EQ(portUsage(UArch::Skylake, "BSWAP_R32").usage.totalUops(),
              1);
    EXPECT_EQ(portUsage(UArch::Skylake, "BSWAP_R64").usage.totalUops(),
              2);
}

// ---------------------------------------------------------------------
// Latency vs ground truth.
// ---------------------------------------------------------------------

core::LatencyResult
latency(UArch arch, const std::string &variant_name)
{
    Context &ctx = context(arch);
    const auto *v = defaultDb().byName(variant_name);
    EXPECT_NE(v, nullptr) << variant_name;
    LatencyAnalyzer analyzer(ctx.harness, ctx.instruments);
    return analyzer.analyze(*v);
}

TEST(Latency, AddSelfPair)
{
    auto r = latency(UArch::Skylake, "ADD_R64_R64");
    const auto *self = r.pair(0, 0);
    ASSERT_NE(self, nullptr);
    EXPECT_NEAR(self->cycles.toDouble(), 1.0, 0.05);
    const auto *cross = r.pair(1, 0);
    ASSERT_NE(cross, nullptr);
    EXPECT_NEAR(cross->cycles.toDouble(), 1.0, 0.05);
}

TEST(Latency, AesdecSandyBridgePairsDiffer)
{
    // The headline case study: lat(XMM1->XMM1)=8, lat(XMM2->XMM1)=1.
    auto r = latency(UArch::SandyBridge, "AESDEC_X_X");
    const auto *state = r.pair(0, 0);
    ASSERT_NE(state, nullptr);
    EXPECT_NEAR(state->cycles.toDouble(), 8.0, 0.1);
    const auto *key = r.pair(1, 0);
    ASSERT_NE(key, nullptr);
    EXPECT_NEAR(key->cycles.toDouble(), 1.0, 0.1);
}

TEST(Latency, AesdecWestmereBothSix)
{
    auto r = latency(UArch::Westmere, "AESDEC_X_X");
    EXPECT_NEAR(r.pair(0, 0)->cycles.toDouble(), 6.0, 0.1);
    EXPECT_NEAR(r.pair(1, 0)->cycles.toDouble(), 6.0, 0.1);
}

TEST(Latency, AesdecHaswellBothSeven)
{
    auto r = latency(UArch::Haswell, "AESDEC_X_X");
    EXPECT_NEAR(r.pair(0, 0)->cycles.toDouble(), 7.0, 0.1);
    EXPECT_NEAR(r.pair(1, 0)->cycles.toDouble(), 7.0, 0.1);
}

TEST(Latency, AesdecMemoryUpperBound)
{
    // Memory variant on SNB: reg pair still 8; the memory (address)
    // to register latency is an upper bound of 7 (IACA said 13).
    auto r = latency(UArch::SandyBridge, "AESDEC_X_M128");
    EXPECT_NEAR(r.pair(0, 0)->cycles.toDouble(), 8.0, 0.1);
    const auto *mem = r.pair(1, 0);
    ASSERT_NE(mem, nullptr);
    // True address->result latency is 7 (load 6 + XOR µop 1); the
    // reported value is an upper bound (composition minus 1) and must
    // bracket it tightly — nowhere near IACA's 13.
    EXPECT_TRUE(mem->upper_bound);
    EXPECT_GE(mem->cycles.toDouble(), 6.9);
    EXPECT_LE(mem->cycles.toDouble(), 8.5);
}

TEST(Latency, ShldNehalemPairs)
{
    // Section 7.3.2: lat(R1->R1)=3 (Fog), lat(R2->R1)=4 (the others).
    auto r = latency(UArch::Nehalem, "SHLD_R64_R64_I8");
    EXPECT_NEAR(r.pair(0, 0)->cycles.toDouble(), 3.0, 0.1);
    EXPECT_NEAR(r.pair(1, 0)->cycles.toDouble(), 4.0, 0.1);
}

TEST(Latency, ShldSkylakeSameRegisterFastPath)
{
    auto r = latency(UArch::Skylake, "SHLD_R64_R64_I8");
    EXPECT_NEAR(r.pair(0, 0)->cycles.toDouble(), 3.0, 0.1);
    EXPECT_NEAR(r.pair(1, 0)->cycles.toDouble(), 3.0, 0.1);
    ASSERT_TRUE(r.same_reg_cycles.has_value());
    EXPECT_NEAR(r.same_reg_cycles->toDouble(), 1.0, 0.1); // the 1-cycle fast path
}

TEST(Latency, ShldNehalemNoSameRegisterEffect)
{
    // With one register for both operands the measured chain is the
    // maximum over both operand pairs: max(3, 4) = 4 (this is what
    // Granlund and AIDA64 report, Section 7.3.2). Nehalem has no
    // same-register fast path, unlike Skylake.
    auto r = latency(UArch::Nehalem, "SHLD_R64_R64_I8");
    ASSERT_TRUE(r.same_reg_cycles.has_value());
    EXPECT_NEAR(r.same_reg_cycles->toDouble(), 4.0, 0.1);
}

TEST(Latency, PointerChaseLoad)
{
    auto r = latency(UArch::Skylake, "MOV_R64_M64");
    const auto *p = r.pair(1, 0);
    ASSERT_NE(p, nullptr);
    EXPECT_NEAR(p->cycles.toDouble(), 4.0, 0.1);
}

TEST(Latency, FlagsPairsOfAdc)
{
    // ADC on Haswell (2 µops): different latencies per pair.
    auto r = latency(UArch::Haswell, "ADC_R64_R64");
    const auto *dst_self = r.pair(0, 0);
    const auto *src = r.pair(1, 0);
    ASSERT_NE(dst_self, nullptr);
    ASSERT_NE(src, nullptr);
    EXPECT_NEAR(dst_self->cycles.toDouble(), 1.0, 0.1);
    EXPECT_NEAR(src->cycles.toDouble(), 2.0, 0.1);
}

TEST(Latency, StoreRoundTripReported)
{
    auto r = latency(UArch::Skylake, "MOV_M64_R64");
    ASSERT_TRUE(r.store_roundtrip.has_value());
    EXPECT_GT(r.store_roundtrip->toDouble(), 4.0);
}

TEST(Latency, CmcFlagsSelfChain)
{
    auto r = latency(UArch::Skylake, "CMC");
    ASSERT_FALSE(r.pairs.empty());
    EXPECT_NEAR(r.pairs[0].cycles.toDouble(), 1.0, 0.05);
}

TEST(Latency, DividerFastAndSlow)
{
    auto r = latency(UArch::Haswell, "DIVPS_X_X");
    const auto *p = r.pair(0, 0);
    ASSERT_NE(p, nullptr);
    ASSERT_TRUE(p->slow_cycles.has_value());
    EXPECT_GT(p->slow_cycles->toDouble(), p->cycles.toDouble() + 1.0);
    EXPECT_NEAR(p->cycles.toDouble(), 11.0, 0.5);
}

TEST(Latency, BypassDelayVisibleInChains)
{
    // CVTDQ2PS (int -> fp): the int-shuffle chain sees the bypass
    // penalty, the fp-shuffle chain does not (or vice versa), so the
    // two chain instruments report different values.
    auto r = latency(UArch::Haswell, "CVTDQ2PS_X_X");
    const auto *p = r.pair(1, 0);
    ASSERT_NE(p, nullptr);
    ASSERT_GE(p->per_chain.size(), 2u);
    double mn = 1e9, mx = 0;
    for (const auto &[name, v] : p->per_chain) {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
    }
    EXPECT_GT(mx, mn + 0.5);
}

// ---------------------------------------------------------------------
// Throughput.
// ---------------------------------------------------------------------

TEST(Throughput, AddMatchesPortCount)
{
    Context &ctx = context(UArch::Skylake);
    ThroughputAnalyzer analyzer(ctx.harness);
    auto r = analyzer.analyze(*defaultDb().byName("ADD_R64_R64"));
    EXPECT_NEAR(r.measured.toDouble(), 0.25, 0.02);
}

TEST(Throughput, CmcLimitedByFlagDependency)
{
    // CMC reads+writes CF: sequences are chained; IACA wrongly says
    // 0.25 (Section 7.2). Breakers cannot fully help because TEST
    // writes CF too, but the measured value must be ~1.
    Context &ctx = context(UArch::Skylake);
    ThroughputAnalyzer analyzer(ctx.harness);
    auto r = analyzer.analyze(*defaultDb().byName("CMC"));
    EXPECT_NEAR(r.measured.toDouble(), 1.0, 0.1);
}

TEST(Throughput, LpFromPortUsageSingleUop)
{
    // 1 µop on p0156 -> 0.25 cycles/instr.
    uarch::PortUsage usage;
    usage.add(portMask({0, 1, 5, 6}), 1);
    EXPECT_NEAR(ThroughputAnalyzer::computeFromPortUsage(usage, 8), 0.25,
                1e-9);
}

TEST(Throughput, LpFromPortUsagePaperExample)
{
    // 3*p015 + 1*p23: bottleneck = 1 cycle (3 µops over 3 ports).
    uarch::PortUsage usage;
    usage.add(portMask({0, 1, 5}), 3);
    usage.add(portMask({2, 3}), 1);
    EXPECT_NEAR(ThroughputAnalyzer::computeFromPortUsage(usage, 6), 1.0,
                1e-9);
}

TEST(Throughput, LpAsymmetricUsage)
{
    // 1*p0 + 1*p01: port 0 can offload the p01 µop to port 1 -> 1.0.
    uarch::PortUsage usage;
    usage.add(portMask({0}), 1);
    usage.add(portMask({0, 1}), 1);
    EXPECT_NEAR(ThroughputAnalyzer::computeFromPortUsage(usage, 8), 1.0,
                1e-9);
    // 2*p0 + 1*p01 -> port0 load 2.
    usage.add(portMask({0}), 1);
    EXPECT_NEAR(ThroughputAnalyzer::computeFromPortUsage(usage, 8), 2.0,
                1e-9);
}

TEST(Throughput, MeasuredMatchesLpForAlu)
{
    auto r = portUsage(UArch::Haswell, "PADDD_X_X");
    double lp = ThroughputAnalyzer::computeFromPortUsage(r.usage, 8);
    Context &ctx = context(UArch::Haswell);
    ThroughputAnalyzer analyzer(ctx.harness);
    auto tp = analyzer.analyze(*defaultDb().byName("PADDD_X_X"));
    EXPECT_NEAR(tp.measured.toDouble(), lp, 0.1);
}

TEST(Throughput, DividerSlowerWithSlowValues)
{
    Context &ctx = context(UArch::Haswell);
    ThroughputAnalyzer analyzer(ctx.harness);
    auto r = analyzer.analyze(*defaultDb().byName("DIVPS_X_X"));
    ASSERT_TRUE(r.slow_measured.has_value());
    EXPECT_GT(r.slow_measured->toDouble(), r.measured.toDouble() + 1.0);
    EXPECT_GT(r.measured.toDouble(), 3.0); // divider occupancy bound
}

} // namespace
} // namespace uops::test
