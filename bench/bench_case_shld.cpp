/**
 * @file
 * Reproduces **Section 7.3.2** (SHLD): the per-pair latency definition
 * explains contradictory prior publications.
 *
 * Paper values:
 *  - Nehalem: lat(R1->R1) = 3 (what Fog measured with distinct
 *    registers, chaining only the implicit first-operand dependency),
 *    lat(R2->R1) = 4 (what the manual, Granlund, IACA and AIDA64
 *    report);
 *  - Skylake: 3 cycles with distinct registers (manual, LLVM, Fog)
 *    but only 1 cycle when the same register is used for both
 *    operands (Granlund, AIDA64) — the tool detects this via the
 *    same-register microbenchmark.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace uops::bench {
namespace {

void
printShldStudy()
{
    header("Section 7.3.2: SHLD R1, R2, imm");
    std::printf("%-13s %12s %12s %10s %16s\n", "Architecture",
                "lat(R1->R1)", "lat(R2->R1)", "same-reg",
                "port usage");
    rule();
    for (auto arch : uarch::allUArches()) {
        auto c = characterizeOne(arch, "SHLD_R64_R64_I8");
        const auto *p00 = c.latency.pair(0, 0);
        const auto *p10 = c.latency.pair(1, 0);
        std::printf("%-13s %12.2f %12.2f %10.2f %16s\n",
                    uarch::uarchInfo(arch).full_name.c_str(),
                    p00 ? p00->cycles.toDouble() : -1.0, p10 ? p10->cycles.toDouble() : -1.0,
                    c.latency.same_reg_cycles
                        ? c.latency.same_reg_cycles->toDouble()
                        : -1.0,
                    c.ports.usage.toString().c_str());
    }
    rule();
    std::printf(
        "Prior-work reconciliation (as explained by the paper):\n"
        "  Nehalem: Fog reports 3       -> our lat(R1->R1)\n"
        "           manual/Granlund/IACA/AIDA64 report 4\n"
        "                                -> our lat(R2->R1) and the\n"
        "                                   same-register measurement\n"
        "  Skylake: manual/LLVM/Fog report 3 -> distinct registers\n"
        "           Granlund/AIDA64 report 1 -> same register for both\n"
        "           (the Nehalem system does not exhibit this "
        "behaviour)\n\n");
}

void
BM_ShldSameRegisterDetection(benchmark::State &state)
{
    Context &ctx = context(uarch::UArch::Skylake);
    core::LatencyAnalyzer lat(ctx.harness, ctx.instruments);
    const auto *v = db().byName("SHLD_R64_R64_I8");
    for (auto _ : state) {
        auto r = lat.analyze(*v);
        benchmark::DoNotOptimize(r.same_reg_cycles.has_value());
    }
}

BENCHMARK(BM_ShldSameRegisterDetection)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace uops::bench

int
main(int argc, char **argv)
{
    uops::bench::printShldStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
