/**
 * @file
 * Reproduces the **Section 5.1** methodology comparison: Algorithm 1
 * vs the prior-work (run-in-isolation, Agner Fog style) approach to
 * port-usage inference, validated against the ground-truth tables —
 * plus ablations of Algorithm 1's ingredients (combination sorting,
 * subset subtraction, isolation filter, early exit).
 *
 * Includes the paper's two motivating examples: PBLENDVB on Nehalem
 * (2*p05 measured as 1*p0+1*p5 by the naive method) and ADC on
 * Haswell (1*p0156+1*p06 measured as 2*p0156).
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace uops::bench {
namespace {

struct Accuracy
{
    int total = 0;
    int exact = 0;
    int measurements = 0;
    double pct() const { return total ? 100.0 * exact / total : 0.0; }
};

/** Variants whose port usage both methods can attempt. */
std::vector<const isa::InstrVariant *>
eligibleVariants(uarch::UArch arch)
{
    std::vector<const isa::InstrVariant *> out;
    core::Characterizer tool(db(), arch);
    for (const auto *v : db().all()) {
        if (!tool.isMeasurable(*v))
            continue;
        if (v->attrs().has_rep_prefix || v->attrs().is_nop ||
            v->mnemonic() == "VZEROUPPER")
            continue;
        // Eliminatable moves have no stable port usage to recover.
        if (v->attrs().mov_elim_candidate)
            continue;
        out.push_back(v);
    }
    return out;
}

Accuracy
evaluate(uarch::UArch arch, bool naive, core::PortUsageOptions options)
{
    Context &ctx = context(arch);
    const auto &tdb = timingDb(arch);
    core::PortUsageAnalyzer analyzer(ctx.harness, ctx.sse_set,
                                     ctx.avx_set, options);
    core::LatencyAnalyzer lat(ctx.harness, ctx.instruments);

    Accuracy acc;
    for (const auto *v : eligibleVariants(arch)) {
        auto truth = uarch::PortUsage::ofTiming(tdb.timing(*v).uops);
        uarch::PortUsage inferred;
        if (naive) {
            inferred = analyzer.analyzeNaive(*v);
        } else {
            auto r = analyzer.analyze(*v, lat.analyze(*v).maxLatency());
            inferred = r.usage;
            acc.measurements += r.measurements;
        }
        ++acc.total;
        if (inferred == truth)
            ++acc.exact;
    }
    return acc;
}

void
printAblation()
{
    header("Section 5.1: Algorithm 1 vs naive port-usage inference "
           "(validated against ground truth)");

    std::printf("%-13s %22s %9s %9s %12s\n", "Architecture", "method",
                "variants", "exact", "per-instr");
    rule();
    for (auto arch : {uarch::UArch::Nehalem, uarch::UArch::Haswell,
                      uarch::UArch::Skylake}) {
        const char *name = uarch::uarchInfo(arch).full_name.c_str();
        Accuracy naive = evaluate(arch, true, {});
        std::printf("%-13s %22s %9d %8.2f%% %12s\n", name,
                    "naive (isolation)", naive.total, naive.pct(), "-");
        Accuracy full = evaluate(arch, false, {});
        std::printf("%-13s %22s %9d %8.2f%% %9.1f\n", name,
                    "Algorithm 1", full.total, full.pct(),
                    static_cast<double>(full.measurements) / full.total);

        core::PortUsageOptions no_subset;
        no_subset.no_subset_subtraction = true;
        Accuracy abl1 = evaluate(arch, false, no_subset);
        std::printf("%-13s %22s %9d %8.2f%% %12s\n", name,
                    "  - subset subtraction", abl1.total, abl1.pct(),
                    "-");

        core::PortUsageOptions no_sort;
        no_sort.no_sorting = true;
        Accuracy abl2 = evaluate(arch, false, no_sort);
        std::printf("%-13s %22s %9d %8.2f%% %12s\n", name,
                    "  - combination sort", abl2.total, abl2.pct(), "-");

        core::PortUsageOptions no_exit;
        no_exit.no_early_exit = true;
        no_exit.no_isolation_filter = true;
        Accuracy abl3 = evaluate(arch, false, no_exit);
        std::printf("%-13s %22s %9d %8.2f%% %12s\n", name,
                    "  - filters (all combos)", abl3.total, abl3.pct(),
                    "-");
        rule();
    }

    std::printf("\nMotivating examples (Section 5.1):\n");
    {
        Context &ctx = context(uarch::UArch::Nehalem);
        core::PortUsageAnalyzer an(ctx.harness, ctx.sse_set,
                                   ctx.avx_set);
        const auto *pblendvb = db().byName("PBLENDVB_X_X_Xi");
        auto naive = an.analyzeNaive(*pblendvb);
        auto full = an.analyze(*pblendvb, 2);
        std::printf("  PBLENDVB/NHM: truth 2*p05   naive %-12s "
                    "Algorithm 1 %s\n",
                    naive.toString().c_str(),
                    full.usage.toString().c_str());
    }
    {
        Context &ctx = context(uarch::UArch::Haswell);
        core::PortUsageAnalyzer an(ctx.harness, ctx.sse_set,
                                   ctx.avx_set);
        const auto *adc = db().byName("ADC_R64_R64");
        auto naive = an.analyzeNaive(*adc);
        auto full = an.analyze(*adc, 2);
        std::printf("  ADC/HSW:      truth 1*p06+1*p0156   naive %-12s "
                    "Algorithm 1 %s\n\n",
                    naive.toString().c_str(),
                    full.usage.toString().c_str());
    }
}

void
BM_Algorithm1SingleInstr(benchmark::State &state)
{
    Context &ctx = context(uarch::UArch::Skylake);
    core::PortUsageAnalyzer analyzer(ctx.harness, ctx.sse_set,
                                     ctx.avx_set);
    const auto *v = db().byName("ADD_R64_M64");
    for (auto _ : state) {
        auto r = analyzer.analyze(*v, 5);
        benchmark::DoNotOptimize(r.usage.totalUops());
    }
}

BENCHMARK(BM_Algorithm1SingleInstr)->Unit(benchmark::kMillisecond);

void
BM_BlockingDiscovery(benchmark::State &state)
{
    const auto &tdb = timingDb(uarch::UArch::Skylake);
    for (auto _ : state) {
        sim::MeasurementHarness harness(tdb);
        core::BlockingFinder finder(harness);
        auto set = finder.find(false);
        benchmark::DoNotOptimize(set.combos.size());
    }
}

BENCHMARK(BM_BlockingDiscovery)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace uops::bench

int
main(int argc, char **argv)
{
    uops::bench::printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
