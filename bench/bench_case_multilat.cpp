/**
 * @file
 * Reproduces **Section 7.3.5** (instructions with multiple latencies):
 * sweeps the instruction set and reports every variant whose operand
 * pairs have at least two distinct latency values — the information a
 * single-valued latency definition cannot express.
 *
 * The paper's list of non-memory examples includes ADC, CMOV(N)BE,
 * (I)MUL, PSHUFB, ROL, ROR, SAR, SBB, SHL, SHR, (V)MPSADBW,
 * VPBLENDV*, (V)PSLL*, (V)PSRA*, (V)PSRL*, XADD and XCHG; most
 * memory-operand instructions qualify trivially (address vs register
 * source).
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <set>

#include "bench_util.h"

namespace uops::bench {
namespace {

void
printMultiLatencyStudy()
{
    header("Section 7.3.5: instructions with multiple latencies "
           "(Skylake, register variants)");

    Context &ctx = context(uarch::UArch::Skylake);
    core::LatencyAnalyzer lat(ctx.harness, ctx.instruments);
    core::Characterizer tool(db(), uarch::UArch::Skylake);

    std::set<std::string> multi_mnemonics;
    int swept = 0;
    std::vector<std::pair<std::string, std::string>> rows;
    for (const auto *v : db().all()) {
        if (!tool.isMeasurable(*v) || v->readsMemory() ||
            v->writesMemory() || v->attrs().uses_divider ||
            v->attrs().is_nop || v->attrs().mov_elim_candidate)
            continue;
        auto r = lat.analyze(*v);
        ++swept;
        double min_lat = 1e9, max_lat = 0.0;
        std::string detail;
        for (const auto &p : r.pairs) {
            if (p.upper_bound)
                continue;
            min_lat = std::min(min_lat, p.cycles.toDouble());
            max_lat = std::max(max_lat, p.cycles.toDouble());
            if (!detail.empty())
                detail += " ";
            detail += p.toString(*v);
        }
        if (max_lat > min_lat + 0.2) {
            multi_mnemonics.insert(v->mnemonic());
            if (rows.size() < 32)
                rows.emplace_back(v->name(), detail);
        }
    }

    std::printf("register variants swept: %d\n", swept);
    std::printf("mnemonics with multiple latencies: %zu\n\n",
                multi_mnemonics.size());
    for (const auto &[name, detail] : rows)
        std::printf("  %-22s %s\n", name.c_str(), detail.c_str());

    std::printf("\nPaper-list members detected: ");
    for (const char *m :
         {"ADC", "SBB", "CMOVBE", "CMOVNBE", "MUL", "IMUL", "SHLD",
          "XADD", "XCHG", "MPSADBW", "PSLLD", "PSRAD"}) {
        if (multi_mnemonics.count(m))
            std::printf("%s ", m);
    }
    std::printf("\n(Section 7.3.5 documents exactly this class; the\n"
                "per-pair definition is what makes it visible.)\n\n");

    // Memory variants: address-source vs register-source latencies.
    std::printf("Memory-operand examples (address vs register pair):\n");
    for (const char *name :
         {"ADD_R64_M64", "AESDEC_X_M128", "CMOVBE_R64_M64"}) {
        auto c = characterizeOne(uarch::UArch::Skylake, name);
        std::string detail;
        for (const auto &p : c.latency.pairs)
            detail += p.toString(*c.variant) + " ";
        std::printf("  %-18s %s\n", name, detail.c_str());
    }
    std::printf("\n");
}

void
BM_MultiLatencySweep(benchmark::State &state)
{
    Context &ctx = context(uarch::UArch::Skylake);
    core::LatencyAnalyzer lat(ctx.harness, ctx.instruments);
    const auto *v = db().byName("XCHG_R64_R64");
    for (auto _ : state) {
        auto r = lat.analyze(*v);
        benchmark::DoNotOptimize(r.pairs.size());
    }
}

BENCHMARK(BM_MultiLatencySweep)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace uops::bench

int
main(int argc, char **argv)
{
    uops::bench::printMultiLatencyStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
