/**
 * @file
 * Reproduces **Section 7.3.1** (AES instructions): the per-pair
 * latency definition uncovers undocumented differences between
 * microarchitectures.
 *
 * Expected shape (paper values):
 *  - Westmere:     3 µops, lat(XMM1->XMM1) = lat(XMM2->XMM1) = 6;
 *  - Sandy Bridge / Ivy Bridge: 2 µops, lat(XMM1->XMM1) = 8 but
 *    lat(XMM2->XMM1) ~= 1 (the key is only XORed in at the end);
 *  - Haswell+:     1 µop, both pairs equal (7 cycles; 4 on Skylake);
 *  - memory variant on SNB: register pair still 8, memory->register
 *    only an upper bound of ~7 — while IACA 2.1 claims 13
 *    (= 7 + load latency).
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "iaca/iaca.h"

namespace uops::bench {
namespace {

void
printAesStudy()
{
    header("Section 7.3.1: AESDEC across microarchitectures");
    std::printf("%-13s %6s %14s %14s %16s\n", "Architecture", "uops",
                "lat(X1->X1)", "lat(X2->X1)", "port usage");
    rule();
    for (auto arch :
         {uarch::UArch::Westmere, uarch::UArch::SandyBridge,
          uarch::UArch::IvyBridge, uarch::UArch::Haswell,
          uarch::UArch::Broadwell, uarch::UArch::Skylake,
          uarch::UArch::KabyLake, uarch::UArch::CoffeeLake}) {
        auto c = characterizeOne(arch, "AESDEC_X_X");
        const auto *p00 = c.latency.pair(0, 0);
        const auto *p10 = c.latency.pair(1, 0);
        std::printf("%-13s %6d %14.2f %14.2f %16s\n",
                    uarch::uarchInfo(arch).full_name.c_str(),
                    c.ports.usage.totalUops(),
                    p00 ? p00->cycles.toDouble() : -1.0, p10 ? p10->cycles.toDouble() : -1.0,
                    c.ports.usage.toString().c_str());
    }
    rule();
    std::printf("Paper: WSM 3 µops lat 6/6; SNB+IVB 2 µops lat 8/1.25;\n"
                "HSW 1 µop lat 7/7 (SKL 4/4). Prior work reported a\n"
                "single latency of 8 (manual/Fog/AIDA64) or 7 (IACA,\n"
                "LLVM) on SNB; only the per-pair definition separates\n"
                "the two dependencies.\n\n");

    std::printf("Memory variant on Sandy Bridge:\n");
    auto mem = characterizeOne(uarch::UArch::SandyBridge,
                               "AESDEC_X_M128");
    const auto *reg_pair = mem.latency.pair(0, 0);
    const auto *mem_pair = mem.latency.pair(1, 0);
    iaca::IacaAnalyzer v21(db(), uarch::UArch::SandyBridge,
                           iaca::Version::V21);
    auto iaca_model = v21.model(*db().byName("AESDEC_X_M128"));
    std::printf("  measured: lat(X1->X1) = %.2f, lat(mem->X1) <= %.2f "
                "(upper bound)\n",
                reg_pair ? reg_pair->cycles.toDouble() : -1.0,
                mem_pair ? mem_pair->cycles.toDouble() : -1.0);
    std::printf("  IACA 2.1 latency: %d   (paper: 13 = 7 + load "
                "latency, 'probably obtained by just adding the\n"
                "   load latency to the latency of the "
                "register-to-register variants')\n\n",
                iaca_model.latency.value_or(-1));

    std::printf("All four AES instructions behave alike (paper: 'We "
                "observed the same behavior for the AESDECLAST,\n"
                "AESENC, and AESENCLAST instructions.'):\n");
    for (const char *name : {"AESDEC_X_X", "AESDECLAST_X_X",
                             "AESENC_X_X", "AESENCLAST_X_X"}) {
        auto c = characterizeOne(uarch::UArch::SandyBridge, name);
        const auto *p00 = c.latency.pair(0, 0);
        const auto *p10 = c.latency.pair(1, 0);
        std::printf("  %-16s SNB: %d µops, lat %.0f / %.0f\n", name,
                    c.ports.usage.totalUops(),
                    p00 ? p00->cycles.toDouble() : -1.0, p10 ? p10->cycles.toDouble() : -1.0);
    }
    std::printf("\n");
}

void
BM_AesLatencyAnalysis(benchmark::State &state)
{
    Context &ctx = context(uarch::UArch::SandyBridge);
    core::LatencyAnalyzer lat(ctx.harness, ctx.instruments);
    const auto *v = db().byName("AESDEC_X_X");
    for (auto _ : state) {
        auto r = lat.analyze(*v);
        benchmark::DoNotOptimize(r.pairs.size());
    }
}

BENCHMARK(BM_AesLatencyAnalysis)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace uops::bench

int
main(int argc, char **argv)
{
    uops::bench::printAesStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
