/**
 * @file
 * Reproduces the **Section 7.2** catalog of differences between
 * hardware measurements and IACA: missing/spurious µops, per-version
 * port-set changes, the µop-sum mismatch, and the ignored flag and
 * memory dependencies in IACA's throughput analysis.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "iaca/iaca.h"

namespace uops::bench {
namespace {

void
printIacaDiffStudy()
{
    header("Section 7.2: hardware measurements vs IACA");

    // --- missing load µop / spurious store µops (Nehalem) ---
    {
        iaca::IacaAnalyzer an(db(), uarch::UArch::Nehalem,
                              iaca::Version::V21);
        auto hw = characterizeOne(uarch::UArch::Nehalem, "IMUL_R64_M64");
        auto m = an.model(*db().byName("IMUL_R64_M64"));
        std::printf("IMUL r64, [m] on Nehalem:\n"
                    "  hardware: %d µops (%s)\n"
                    "  IACA:     %d µops (%s)  <- no load µop\n\n",
                    hw.ports.usage.totalUops(),
                    hw.ports.usage.toString().c_str(), m.total_uops,
                    m.usage.toString().c_str());
        auto hw2 = characterizeOne(uarch::UArch::Nehalem, "TEST_M64_R64");
        auto m2 = an.model(*db().byName("TEST_M64_R64"));
        std::printf("TEST [m], r64 on Nehalem:\n"
                    "  hardware: %d µops (%s)\n"
                    "  IACA:     %d µops (%s)  <- spurious store µops\n\n",
                    hw2.ports.usage.totalUops(),
                    hw2.ports.usage.toString().c_str(), m2.total_uops,
                    m2.usage.toString().c_str());
    }

    // --- per-width blind spot: BSWAP on Skylake ---
    {
        iaca::IacaAnalyzer an(db(), uarch::UArch::Skylake,
                              iaca::Version::V30);
        auto hw32 = characterizeOne(uarch::UArch::Skylake, "BSWAP_R32");
        auto hw64 = characterizeOne(uarch::UArch::Skylake, "BSWAP_R64");
        std::printf("BSWAP on Skylake:\n"
                    "  hardware: r32 = %d µop, r64 = %d µops\n"
                    "  IACA:     r32 = %d µops, r64 = %d µops\n\n",
                    hw32.ports.usage.totalUops(),
                    hw64.ports.usage.totalUops(),
                    an.model(*db().byName("BSWAP_R32")).total_uops,
                    an.model(*db().byName("BSWAP_R64")).total_uops);
    }

    // --- µop sum mismatch: VHADDPD on Skylake ---
    {
        iaca::IacaAnalyzer an(db(), uarch::UArch::Skylake,
                              iaca::Version::V30);
        auto hw = characterizeOne(uarch::UArch::Skylake,
                                  "VHADDPD_X_X_X");
        auto m = an.model(*db().byName("VHADDPD_X_X_X"));
        int port_sum = 0;
        for (const auto &[mask, count] : m.usage.entries)
            port_sum += count;
        std::printf("VHADDPD on Skylake:\n"
                    "  hardware: %s (3 µops)\n"
                    "  IACA: total %d µops, per-port view shows only %d "
                    "(sums do not add up)\n\n",
                    hw.ports.usage.toString().c_str(), m.total_uops,
                    port_sum);
    }

    // --- version differences ---
    {
        iaca::IacaAnalyzer v23(db(), uarch::UArch::Skylake,
                               iaca::Version::V23);
        iaca::IacaAnalyzer v30(db(), uarch::UArch::Skylake,
                               iaca::Version::V30);
        std::printf("VMINPS on Skylake (newer version fixed a bug):\n"
                    "  IACA 2.3: %s   IACA 3.0: %s   hardware: %s\n\n",
                    v23.model(*db().byName("VMINPS_X_X_X"))
                        .usage.toString().c_str(),
                    v30.model(*db().byName("VMINPS_X_X_X"))
                        .usage.toString().c_str(),
                    characterizeOne(uarch::UArch::Skylake,
                                    "VMINPS_X_X_X")
                        .ports.usage.toString()
                        .c_str());
        iaca::IacaAnalyzer h21(db(), uarch::UArch::Haswell,
                               iaca::Version::V21);
        iaca::IacaAnalyzer h22(db(), uarch::UArch::Haswell,
                               iaca::Version::V22);
        std::printf("SAHF on Haswell (older version was right):\n"
                    "  IACA 2.1: %s   IACA 2.2+: %s   hardware: %s\n\n",
                    h21.model(*db().byName("SAHF_R8Hi"))
                        .usage.toString().c_str(),
                    h22.model(*db().byName("SAHF_R8Hi"))
                        .usage.toString().c_str(),
                    characterizeOne(uarch::UArch::Haswell, "SAHF_R8Hi")
                        .ports.usage.toString()
                        .c_str());
    }

    // --- ignored dependencies in throughput analysis ---
    {
        iaca::IacaAnalyzer v30(db(), uarch::UArch::Haswell,
                               iaca::Version::V30);
        auto cmc = isa::assemble(db(), "CMC");
        auto hw = context(uarch::UArch::Haswell).harness.measure(cmc);
        std::printf("CMC throughput (flag dependency):\n"
                    "  hardware %.2f cycles; IACA 3.0 %.2f (ignores "
                    "status-flag dependencies)\n\n",
                    hw.cycles, v30.analyzeLoop(cmc).block_throughput);

        auto seq = isa::assemble(db(), "MOV [RAX], RBX\nMOV RBX, [RAX]");
        auto hw2 = context(uarch::UArch::Haswell).harness.measure(seq);
        std::printf("MOV [RAX],RBX; MOV RBX,[RAX] (memory "
                    "dependency):\n"
                    "  hardware %.2f cycles; IACA %.2f (ignores memory "
                    "dependencies entirely)\n\n",
                    hw2.cycles, v30.analyzeLoop(seq).block_throughput);
    }
}

void
BM_IacaLoopAnalysis(benchmark::State &state)
{
    iaca::IacaAnalyzer an(db(), uarch::UArch::Skylake,
                          iaca::Version::V30);
    auto kernel = isa::assemble(db(), "ADD RAX, RBX\n"
                                      "PSHUFD XMM1, XMM2, 0\n"
                                      "MOV RCX, [RSI]");
    for (auto _ : state) {
        auto r = an.analyzeLoop(kernel);
        benchmark::DoNotOptimize(r.block_throughput);
    }
}

BENCHMARK(BM_IacaLoopAnalysis)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace uops::bench

int
main(int argc, char **argv)
{
    uops::bench::printIacaDiffStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
