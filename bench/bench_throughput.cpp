/**
 * @file
 * Reproduces the **Section 5.3 / 4.2** throughput analysis: the two
 * throughput definitions (Intel's port-based Definition 1, computed
 * from the inferred port usage via the LP of Section 5.3.2, vs Fog's
 * measured Definition 2) across the instruction set, the effect of
 * dependency-breaking instructions on instructions with implicit
 * read-written operands, and the value-dependent divider throughput.
 */

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"

namespace uops::bench {
namespace {

void
printThroughputStudy()
{
    header("Section 5.3: measured (Def. 2) vs port-computed (Def. 1) "
           "throughput, Skylake");

    Context &ctx = context(uarch::UArch::Skylake);
    core::ThroughputAnalyzer tp(ctx.harness);
    core::PortUsageAnalyzer pu(ctx.harness, ctx.sse_set, ctx.avx_set);
    core::LatencyAnalyzer lat(ctx.harness, ctx.instruments);
    core::Characterizer tool(db(), uarch::UArch::Skylake);

    int total = 0, equal = 0, higher = 0;
    double max_gap = 0.0;
    std::string max_gap_name;
    std::vector<std::tuple<std::string, double, double, double>>
        interesting;

    for (const auto *v : db().all()) {
        if (!tool.isMeasurable(*v) || v->attrs().uses_divider ||
            v->attrs().has_rep_prefix || v->attrs().has_lock_prefix ||
            v->attrs().is_nop || v->attrs().mov_elim_candidate ||
            v->mnemonic() == "VZEROUPPER")
            continue;
        auto usage = pu.analyze(*v, lat.analyze(*v).maxLatency()).usage;
        if (usage.entries.empty())
            continue;
        double computed = core::ThroughputAnalyzer::computeFromPortUsage(
            usage, 8);
        auto measured = tp.analyze(*v);
        double best = measured.best().toDouble();
        ++total;
        double gap = best - computed;
        if (std::abs(gap) <= 0.07) {
            ++equal;
        } else if (gap > 0) {
            ++higher;
            if (gap > max_gap) {
                max_gap = gap;
                max_gap_name = v->name();
            }
            if (interesting.size() < 10)
                interesting.emplace_back(v->name(), best, computed, gap);
        }
    }

    std::printf("variants compared:            %d\n", total);
    std::printf("measured == computed (+-5%%):  %d (%.1f%%)\n", equal,
                100.0 * equal / total);
    std::printf("measured > computed:          %d (%.1f%%)\n", higher,
                100.0 * higher / total);
    std::printf("largest gap:                  %.2f cycles (%s)\n\n",
                max_gap, max_gap_name.c_str());
    std::printf("Per the paper (Section 4.2): Definition 2 'may yield\n"
                "higher values (lower throughput) than Definition 1'\n"
                "— implicit dependencies and front-end effects make the\n"
                "measured value an upper bound on the port bound.\n\n");

    std::printf("Examples where they differ (implicit operands):\n");
    std::printf("  %-22s %9s %9s %6s\n", "variant", "measured",
                "computed", "gap");
    for (const auto &[name, m, c, gap] : interesting)
        std::printf("  %-22s %9.2f %9.2f %6.2f\n", name.c_str(), m, c,
                    gap);

    std::printf("\nDependency breakers (Section 5.3.1):\n");
    for (const char *name :
         {"MUL_R64i_R64i_R64", "ADC_R64_R64", "SHL_R64_R8i", "CMC"}) {
        const auto *v = db().byName(name);
        auto r = tp.analyze(*v);
        std::printf("  %-20s plain %5.2f  with breakers %5.2f\n", name,
                    r.measured.toDouble(),
                    (r.with_breakers ? *r.with_breakers : r.measured)
                        .toDouble());
    }

    std::printf("\nDivider value dependence (Section 5.3.1), Haswell:\n");
    {
        Context &hsw = context(uarch::UArch::Haswell);
        core::ThroughputAnalyzer htp(hsw.harness);
        for (const char *name :
             {"DIVPS_X_X", "DIVPD_X_X", "DIV_R64i_R64i_R64",
              "SQRTPS_X_X"}) {
            const auto *v = db().byName(name);
            auto r = htp.analyze(*v);
            std::printf("  %-20s fast %6.2f  slow %6.2f\n", name,
                        r.measured.toDouble(),
                        r.slow_measured ? r.slow_measured->toDouble()
                                        : 0.0);
        }
    }
    std::printf("\n");
}

void
BM_ThroughputMeasurement(benchmark::State &state)
{
    Context &ctx = context(uarch::UArch::Skylake);
    core::ThroughputAnalyzer tp(ctx.harness);
    const auto *v = db().byName("ADD_R64_R64");
    for (auto _ : state) {
        auto r = tp.analyze(*v);
        benchmark::DoNotOptimize(r.measured);
    }
}

BENCHMARK(BM_ThroughputMeasurement)->Unit(benchmark::kMillisecond);

void
BM_ThroughputLp(benchmark::State &state)
{
    uarch::PortUsage usage;
    usage.add(uarch::portMask({0, 1, 5, 6}), 3);
    usage.add(uarch::portMask({2, 3}), 2);
    usage.add(uarch::portMask({4}), 1);
    usage.add(uarch::portMask({2, 3, 7}), 1);
    for (auto _ : state) {
        double tp =
            core::ThroughputAnalyzer::computeFromPortUsage(usage, 8);
        benchmark::DoNotOptimize(tp);
    }
}

BENCHMARK(BM_ThroughputLp)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace uops::bench

int
main(int argc, char **argv)
{
    uops::bench::printThroughputStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
