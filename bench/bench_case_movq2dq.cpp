/**
 * @file
 * Reproduces **Section 7.3.3** (MOVQ2DQ on Skylake): prior work models
 * the port usage inaccurately.
 *
 * Ground truth: 1 µop on port 0 plus 1 µop on ports {0,1,5}. Running
 * the instruction in isolation shows averages of 1.0 / 0.5 / 0.5 µops
 * on ports 0 / 1 / 5, from which Agner Fog concluded 1*p0 + 1*p15.
 * Executing it together with blocking instructions for ports 1 and 5
 * shows all µops moving to port 0 — so the second µop can use port 0
 * too. (IACA and LLVM even claim both µops are port-5-only.)
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace uops::bench {
namespace {

void
printMovq2dqStudy()
{
    header("Section 7.3.3: MOVQ2DQ XMM, MM on Skylake");

    auto arch = uarch::UArch::Skylake;
    Context &ctx = context(arch);
    const auto *v = db().byName("MOVQ2DQ_X_MM");

    // In-isolation per-port averages (the naive method's input).
    core::BlockingFinder finder(ctx.harness);
    auto iso = finder.measureIsolation(*v);
    core::RegPool pool(core::RegPool::Zone::Analyzed);
    auto body = core::independentSequence(*v, pool, 8);
    auto m = ctx.harness.measure(body);
    std::printf("In isolation (8 independent copies, per instruction):\n"
                "  port0 %.2f   port1 %.2f   port5 %.2f   (total %.2f "
                "uops)\n",
                m.port_uops[0] / 8, m.port_uops[1] / 8,
                m.port_uops[5] / 8, iso.total_uops);

    core::PortUsageAnalyzer analyzer(ctx.harness, ctx.sse_set,
                                     ctx.avx_set);
    auto naive = analyzer.analyzeNaive(*v);
    auto full = analyzer.analyze(*v, 2);
    std::printf("\n  Fog-style conclusion:   %s\n",
                naive.toString().c_str());
    std::printf("  Algorithm 1:            %s\n",
                full.usage.toString().c_str());
    std::printf("  ground truth:           1*p0+1*p015\n");
    std::printf("  IACA / LLVM claim:      2*p5 (both µops port 5 "
                "only)\n\n");

    // The paper's direct evidence: blocking ports 1 and 5 pushes all
    // µops of MOVQ2DQ onto port 0.
    const auto &b1 = ctx.sse_set.combos.at(uarch::portMask({1}));
    const auto &b5 = ctx.sse_set.combos.at(uarch::portMask({5}));
    core::RegPool filler(core::RegPool::Zone::Filler);
    isa::Kernel blocked;
    auto s1 = core::independentSequence(*b1.variant, filler, 16);
    auto s5 = core::independentSequence(*b5.variant, filler, 16);
    blocked.insert(blocked.end(), s1.begin(), s1.end());
    blocked.insert(blocked.end(), s5.begin(), s5.end());
    core::RegPool apool(core::RegPool::Zone::Analyzed);
    blocked.push_back(core::makeIndependent(*v, apool));
    auto bm = ctx.harness.measure(blocked);
    double extra_p0 = bm.port_uops[0];
    double extra_p1 = bm.port_uops[1] - 16;
    double extra_p5 = bm.port_uops[5] - 16;
    std::printf("With 16 blocking instructions each for port 1 (%s) and "
                "port 5 (%s):\n",
                b1.variant->name().c_str(), b5.variant->name().c_str());
    std::printf("  MOVQ2DQ µops on port 0: %.2f   port 1: %.2f   "
                "port 5: %.2f\n",
                extra_p0, extra_p1, extra_p5);
    std::printf("  -> all µops execute on port 0: the second µop can "
                "use p0, p1 AND p5.\n\n");
}

void
BM_Movq2dqPortUsage(benchmark::State &state)
{
    Context &ctx = context(uarch::UArch::Skylake);
    core::PortUsageAnalyzer analyzer(ctx.harness, ctx.sse_set,
                                     ctx.avx_set);
    const auto *v = db().byName("MOVQ2DQ_X_MM");
    for (auto _ : state) {
        auto r = analyzer.analyze(*v, 2);
        benchmark::DoNotOptimize(r.usage.totalUops());
    }
}

BENCHMARK(BM_Movq2dqPortUsage)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace uops::bench

int
main(int argc, char **argv)
{
    uops::bench::printMovq2dqStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
