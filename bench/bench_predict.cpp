/**
 * @file
 * Benchmarks for the /predict kernel compute service: a cold request
 * (admission -> assemble -> cycle-level simulation -> static analysis
 * -> JSON render), a memoized request (same kernel fingerprint, the
 * stored response replayed byte-identically), and concurrent clients
 * batched onto the engine's worker pool.
 *
 * All three drive QueryService::handle() with POST requests — POSTs
 * bypass the outer response cache, so `predict_cold` measures the
 * full compute path (every iteration a unique kernel fingerprint),
 * `predict_memoized` measures exactly the kernel-memo hit, and
 * `predict_concurrent` measures aggregate throughput with four
 * client threads over a mixed unique-kernel workload.
 *
 * Machine-readable mode for perf tracking (BENCH_predict.json):
 *
 *     bench_predict --json <path>
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <thread>

#include "bench_util.h"
#include "core/batch.h"
#include "db/catalog.h"
#include "server/service.h"

namespace uops::bench {
namespace {

/** A small catalog covering the benchmark kernels' mnemonics on
 *  Skylake, so the static-analysis half of the response is exercised
 *  too (not just the simulation). */
std::shared_ptr<const db::DatabaseCatalog>
benchCatalog()
{
    static const auto catalog = [] {
        core::BatchOptions options;
        options.characterizer.filter =
            [](const isa::InstrVariant &v) {
                const std::string &m = v.mnemonic();
                return m == "ADD" || m == "IMUL" || m == "MOV";
            };
        return db::runCatalogSweep(db(), {uarch::UArch::Skylake},
                                   options, nullptr);
    }();
    return catalog;
}

server::HttpRequest
postPredict(std::string listing)
{
    server::HttpRequest request;
    request.method = "POST";
    request.target = "/predict?uarch=SKL";
    request.path = "/predict";
    request.query["uarch"] = "SKL";
    request.body = std::move(listing);
    return request;
}

/** A unique kernel per @p i: the displacement varies the fingerprint
 *  (distinct memory tags are distinct kernels to the simulator), so
 *  neither the response cache nor the kernel memo can serve it. */
std::string
uniqueKernel(size_t i)
{
    return "MOV RAX, [RBX+" + std::to_string(1 + i % 1000000) +
           "]\nADD RAX, RCX\nIMUL RCX, RAX";
}

const std::string &
fixedKernel()
{
    static const std::string kernel =
        "ADD RAX, RBX\nIMUL RCX, RAX\nMOV RDX, [RSI+8]";
    return kernel;
}

// ---------------------------------------------------------------------
// google-benchmark harness
// ---------------------------------------------------------------------

void
BM_PredictCold(benchmark::State &state)
{
    server::QueryService service(benchCatalog(), db());
    size_t i = 0;
    for (auto _ : state) {
        auto response =
            service.handle(postPredict(uniqueKernel(i++)));
        benchmark::DoNotOptimize(response.body.size());
    }
}
BENCHMARK(BM_PredictCold)->Unit(benchmark::kMicrosecond);

void
BM_PredictMemoized(benchmark::State &state)
{
    server::QueryService service(benchCatalog(), db());
    service.handle(postPredict(fixedKernel()));   // warm the memo
    for (auto _ : state) {
        auto response = service.handle(postPredict(fixedKernel()));
        benchmark::DoNotOptimize(response.body.size());
    }
}
BENCHMARK(BM_PredictMemoized)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------
// --json mode
// ---------------------------------------------------------------------

struct JsonRun
{
    const char *name;
    size_t iterations;
    double wall_ms;
    double ops_per_s;
};

template <typename Fn>
JsonRun
timedLoop(const char *name, size_t iterations, Fn &&fn)
{
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < iterations; ++i)
        fn(i);
    auto t1 = std::chrono::steady_clock::now();
    JsonRun run;
    run.name = name;
    run.iterations = iterations;
    run.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    run.ops_per_s = run.wall_ms > 0.0
                        ? 1000.0 * static_cast<double>(iterations) /
                              run.wall_ms
                        : 0.0;
    return run;
}

JsonRun
concurrentRun()
{
    constexpr size_t kClients = 4;
    constexpr size_t kPerClient = 150;

    server::QueryService::Options options;
    options.engine.num_threads = 2;
    server::QueryService service(benchCatalog(), db(), options);

    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    std::atomic<size_t> failures{0};
    for (size_t t = 0; t < kClients; ++t) {
        clients.emplace_back([&, t] {
            for (size_t i = 0; i < kPerClient; ++i) {
                auto response = service.handle(postPredict(
                    uniqueKernel(t * kPerClient + i)));
                if (response.status != 200)
                    ++failures;
            }
        });
    }
    for (std::thread &client : clients)
        client.join();
    auto t1 = std::chrono::steady_clock::now();
    if (failures.load() != 0)
        std::fprintf(stderr, "predict_concurrent: %zu failures\n",
                     failures.load());

    JsonRun run;
    run.name = "predict_concurrent";
    run.iterations = kClients * kPerClient;
    run.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    run.ops_per_s =
        run.wall_ms > 0.0
            ? 1000.0 * static_cast<double>(run.iterations) /
                  run.wall_ms
            : 0.0;
    return run;
}

int
jsonMode(const std::string &path)
{
    std::vector<JsonRun> runs;
    {
        server::QueryService service(benchCatalog(), db());
        runs.push_back(timedLoop("predict_cold", 400, [&](size_t i) {
            auto response =
                service.handle(postPredict(uniqueKernel(i)));
            benchmark::DoNotOptimize(response.body.size());
        }));
    }
    {
        server::QueryService service(benchCatalog(), db());
        service.handle(postPredict(fixedKernel()));
        runs.push_back(
            timedLoop("predict_memoized", 100000, [&](size_t) {
                auto response =
                    service.handle(postPredict(fixedKernel()));
                benchmark::DoNotOptimize(response.body.size());
            }));
    }
    runs.push_back(concurrentRun());

    std::string out = "{\n  \"benchmark\": \"bench_predict\",\n";
    out += "  \"runs\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        char buf[200];
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"iterations\": %zu, "
                      "\"wall_ms\": %.1f, \"ops_per_s\": %.0f}%s\n",
                      runs[i].name, runs[i].iterations,
                      runs[i].wall_ms, runs[i].ops_per_s,
                      i + 1 < runs.size() ? "," : "");
        out += buf;
        std::printf("%s", buf);
    }
    out += "  ]\n}\n";

    std::ofstream file(path);
    if (!file) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    file << out;
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

} // namespace
} // namespace uops::bench

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "error: --json requires a path\n");
                return 1;
            }
            return uops::bench::jsonMode(argv[i + 1]);
        }
    }
    uops::bench::header(
        "/predict compute-service benchmarks (cold vs memoized vs "
        "concurrent)");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
