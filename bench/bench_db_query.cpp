/**
 * @file
 * Benchmarks for the serving subsystem: database point lookups,
 * port-mask columnar scans, compound-predicate scans and
 * cross-generation analytics diffs through the scan executor,
 * /predict through the query service with a
 * cold vs. warm response cache, the two ingest paths — direct
 * (per-record appends, exactly what the streaming SweepIngestor does)
 * versus materializing and re-parsing the results XML — and catalog
 * snapshot loading through the zero-copy mmap path versus the
 * copying stream path.
 *
 * The database is built once from a standard two-uarch sweep slice
 * (the same `id % 4 == 0` slice the batch-sweep scaling study uses),
 * so numbers are comparable across PRs.
 *
 * Machine-readable mode for perf tracking (BENCH_db.json):
 *
 *     bench_db_query --json <path>
 *
 * writes one record {name, iterations, wall_ms, ops_per_s} per
 * benchmark, skipping the google-benchmark harness.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "bench_util.h"
#include "core/batch.h"
#include "db/catalog.h"
#include "server/service.h"

namespace uops::bench {
namespace {

const core::CharacterizationReport &
sliceReport()
{
    static const core::CharacterizationReport report = [] {
        core::BatchOptions options;
        // The scaling-study slice, plus every ADD/IMUL variant so the
        // /predict benchmark kernel is guaranteed to be present.
        options.characterizer.filter = [](const isa::InstrVariant &v) {
            return v.id() % 4 == 0 || v.mnemonic() == "ADD" ||
                   v.mnemonic() == "IMUL";
        };
        return core::runBatchSweep(
            db(), {uarch::UArch::Nehalem, uarch::UArch::Skylake},
            options);
    }();
    return report;
}

const db::InstructionDatabase &
sliceDb()
{
    static const db::InstructionDatabase *database = [] {
        auto *built = new db::InstructionDatabase();
        built->ingest(sliceReport());
        return built;
    }();
    return *database;
}

/** The slice as a sharded catalog (what QueryService serves). */
std::shared_ptr<const db::DatabaseCatalog>
sliceCatalog()
{
    static const auto catalog =
        db::DatabaseCatalog::fromMonolith(sliceDb(), 1);
    return catalog;
}

/** On-disk catalog dir for the snapshot_load benchmarks. */
const std::string &
catalogDir()
{
    static const std::string dir = [] {
        std::string path = "/tmp/uops_bench_catalog";
        std::filesystem::remove_all(path);
        db::saveCatalogDir(*sliceCatalog(), path);
        return path;
    }();
    return dir;
}

/** Direct ingest: drive the actual streaming SweepIngestor over the
 *  report's outcomes — per-record appends from references plus one
 *  index rebuild, exactly the work a sweep's sink performs (no
 *  intermediate CharacterizationSet copy). */
size_t
ingestDirect()
{
    db::InstructionDatabase built;
    db::SweepIngestor ingestor(built);
    for (const core::UArchReport &r : sliceReport().uarches)
        for (const core::VariantOutcome &outcome : r.outcomes)
            ingestor.onVariant(r.arch, outcome);
    ingestor.finish();
    return built.numRecords();
}

/** The legacy path this PR removes from the hot loop: materialize the
 *  Section 6.4 XML tree, serialize, re-parse, ingest the document. */
size_t
ingestViaXml()
{
    isa::ResultsDoc doc =
        isa::parseResultsXml(sliceReport().toXmlString());
    db::InstructionDatabase built;
    built.ingestResults(doc, &db());
    return built.numRecords();
}

/** Names of every Skylake record (lookup working set). */
const std::vector<std::string> &
skylakeNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        db::Query query;
        query.arch = uarch::UArch::Skylake;
        for (uint32_t row : sliceDb().search(query))
            out.emplace_back(sliceDb().record(row).name());
        return out;
    }();
    return names;
}

server::HttpRequest
predictRequest(size_t salt)
{
    // A distinct dummy parameter defeats the response cache (the key
    // is the raw target), while the handler ignores it — this is the
    // cold-cache workload.
    server::HttpRequest request;
    request.method = "GET";
    request.target = "/predict?uarch=SKL&asm=ADD RAX, RBX;IMUL RCX, "
                     "RAX&salt=" +
                     std::to_string(salt);
    request.path = "/predict";
    request.query["uarch"] = "SKL";
    request.query["asm"] = "ADD RAX, RBX;IMUL RCX, RAX";
    request.query["salt"] = std::to_string(salt);
    return request;
}

// ---------------------------------------------------------------------
// google-benchmark harness
// ---------------------------------------------------------------------

void
BM_PointLookup(benchmark::State &state)
{
    const auto &database = sliceDb();
    const auto &names = skylakeNames();
    size_t i = 0;
    for (auto _ : state) {
        auto row = database.find(uarch::UArch::Skylake,
                                 names[i++ % names.size()]);
        benchmark::DoNotOptimize(
            database.record(*row).tpMeasured());
    }
}
BENCHMARK(BM_PointLookup);

void
BM_PortMaskScan(benchmark::State &state)
{
    const auto &database = sliceDb();
    db::Query query;
    query.arch = uarch::UArch::Skylake;
    query.uses_ports = uarch::portMask({0, 5});
    for (auto _ : state) {
        auto rows = database.search(query);
        benchmark::DoNotOptimize(rows.size());
    }
}
BENCHMARK(BM_PortMaskScan);

void
BM_ScanCompound(benchmark::State &state)
{
    const auto &database = sliceDb();
    db::Query query;
    query.arch = uarch::UArch::Skylake;
    query.uses_ports = uarch::portMask({0, 5});
    query.uops_max = 2;
    query.lat_max = 4;
    for (auto _ : state) {
        auto rows = database.search(query);
        benchmark::DoNotOptimize(rows.size());
    }
}
BENCHMARK(BM_ScanCompound);

void
BM_AnalyticsDiff(benchmark::State &state)
{
    auto catalog = sliceCatalog();
    db::AnalyticsQuery query;
    query.from = uarch::UArch::Nehalem;
    query.to = uarch::UArch::Skylake;
    query.direction = db::AnalyticsQuery::Direction::Changed;
    for (auto _ : state) {
        auto result = catalog->analytics(query);
        benchmark::DoNotOptimize(result.entries.size());
    }
}
BENCHMARK(BM_AnalyticsDiff);

void
BM_SnapshotLoadMmap(benchmark::State &state)
{
    catalogDir();
    for (auto _ : state) {
        auto catalog = db::loadCatalogDir(
            catalogDir(), db::LoadMode::Mmap, false);
        benchmark::DoNotOptimize(catalog->numRecords());
    }
}
BENCHMARK(BM_SnapshotLoadMmap)->Unit(benchmark::kMicrosecond);

void
BM_SnapshotLoadStream(benchmark::State &state)
{
    catalogDir();
    for (auto _ : state) {
        auto catalog = db::loadCatalogDir(
            catalogDir(), db::LoadMode::Stream, false);
        benchmark::DoNotOptimize(catalog->numRecords());
    }
}
BENCHMARK(BM_SnapshotLoadStream)->Unit(benchmark::kMicrosecond);

void
BM_PredictUncached(benchmark::State &state)
{
    server::QueryService service(sliceCatalog(), db());
    size_t salt = 0;
    for (auto _ : state) {
        auto response = service.handle(predictRequest(salt++));
        benchmark::DoNotOptimize(response.body.size());
    }
}
BENCHMARK(BM_PredictUncached)->Unit(benchmark::kMicrosecond);

void
BM_PredictCached(benchmark::State &state)
{
    server::QueryService service(sliceCatalog(), db());
    server::HttpRequest request = predictRequest(0);
    service.handle(request);   // warm the cache
    for (auto _ : state) {
        auto response = service.handle(request);
        benchmark::DoNotOptimize(response.body.size());
    }
}
BENCHMARK(BM_PredictCached)->Unit(benchmark::kMicrosecond);

void
BM_IngestDirect(benchmark::State &state)
{
    sliceReport();   // build outside the timed region
    for (auto _ : state)
        benchmark::DoNotOptimize(ingestDirect());
}
BENCHMARK(BM_IngestDirect)->Unit(benchmark::kMicrosecond);

void
BM_IngestViaXml(benchmark::State &state)
{
    sliceReport();
    for (auto _ : state)
        benchmark::DoNotOptimize(ingestViaXml());
}
BENCHMARK(BM_IngestViaXml)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------
// --json mode
// ---------------------------------------------------------------------

struct JsonRun
{
    const char *name;
    size_t iterations;
    double wall_ms;
    double ops_per_s;
};

template <typename Fn>
JsonRun
timedLoop(const char *name, size_t iterations, Fn &&fn)
{
    // Best-of-three repetitions: the recorded figure is the fastest
    // rep. On a shared single-core box a scheduler preemption inside
    // the loop inflates wall time several-fold; the minimum over
    // independent reps is the standard way to report the machine's
    // actual capability (and what the CI ratio floors compare).
    JsonRun run;
    run.name = name;
    run.iterations = iterations;
    run.wall_ms = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        for (size_t i = 0; i < iterations; ++i)
            fn(i);
        auto t1 = std::chrono::steady_clock::now();
        double wall_ms =
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count();
        if (rep == 0 || wall_ms < run.wall_ms)
            run.wall_ms = wall_ms;
    }
    run.ops_per_s = run.wall_ms > 0.0
                        ? 1000.0 * static_cast<double>(iterations) /
                              run.wall_ms
                        : 0.0;
    return run;
}

int
jsonMode(const std::string &path)
{
    const auto &database = sliceDb();
    const auto &names = skylakeNames();

    std::vector<JsonRun> runs;
    runs.push_back(timedLoop("point_lookup", 200000, [&](size_t i) {
        auto row = database.find(uarch::UArch::Skylake,
                                 names[i % names.size()]);
        benchmark::DoNotOptimize(
            database.record(*row).tpMeasured());
    }));

    db::Query query;
    query.arch = uarch::UArch::Skylake;
    query.uses_ports = uarch::portMask({0, 5});
    runs.push_back(timedLoop("port_mask_scan", 20000, [&](size_t) {
        auto rows = database.search(query);
        benchmark::DoNotOptimize(rows.size());
    }));

    db::Query compound;
    compound.arch = uarch::UArch::Skylake;
    compound.uses_ports = uarch::portMask({0, 5});
    compound.uops_max = 2;
    compound.lat_max = 4;
    runs.push_back(timedLoop("scan_compound", 20000, [&](size_t) {
        auto rows = database.search(compound);
        benchmark::DoNotOptimize(rows.size());
    }));

    {
        auto catalog = sliceCatalog();
        db::AnalyticsQuery diff;
        diff.from = uarch::UArch::Nehalem;
        diff.to = uarch::UArch::Skylake;
        diff.direction = db::AnalyticsQuery::Direction::Changed;
        runs.push_back(timedLoop("analytics_diff", 5000, [&](size_t) {
            auto result = catalog->analytics(diff);
            benchmark::DoNotOptimize(result.entries.size());
        }));
    }

    {
        server::QueryService service(sliceCatalog(), db());
        // The salt must keep advancing across timedLoop's reps —
        // reusing per-rep indices would let later reps hit the
        // response cache and report the cached path as uncached.
        size_t salt = 0;
        runs.push_back(
            timedLoop("predict_uncached", 2000, [&](size_t) {
                auto response = service.handle(predictRequest(salt++));
                benchmark::DoNotOptimize(response.body.size());
            }));
    }
    {
        server::QueryService service(sliceCatalog(), db());
        server::HttpRequest request = predictRequest(0);
        service.handle(request);
        runs.push_back(
            timedLoop("predict_cached", 200000, [&](size_t) {
                auto response = service.handle(request);
                benchmark::DoNotOptimize(response.body.size());
            }));
    }
    {
        // The same cached hot path with full observability switched
        // on — info-level access log (to a discarding sink, so the
        // datapoint measures instrumentation, not stderr I/O) plus
        // the per-request ID mint. Guards the overhead budget: this
        // run must stay within tolerance of its own baseline, and
        // predict_cached above proves the log-off path didn't pay.
        server::QueryService::Options options;
        options.log_level = obs::LogLevel::Info;
        server::QueryService service(sliceCatalog(), db(), options);
        size_t log_bytes = 0;
        service.logger().setSink([&](std::string_view line) {
            log_bytes += line.size();
        });
        server::HttpRequest request = predictRequest(0);
        service.handle(request);
        runs.push_back(
            timedLoop("predict_cached_logged", 200000, [&](size_t) {
                auto response = service.handle(request);
                benchmark::DoNotOptimize(response.body.size());
            }));
        benchmark::DoNotOptimize(log_bytes);
    }

    runs.push_back(timedLoop("ingest_direct", 500, [&](size_t) {
        benchmark::DoNotOptimize(ingestDirect());
    }));
    runs.push_back(timedLoop("ingest_via_xml", 100, [&](size_t) {
        benchmark::DoNotOptimize(ingestViaXml());
    }));

    catalogDir();
    // Hash verification reads every byte either way, which would
    // mask the zero-copy difference; the load benchmarks measure the
    // pure load path (verification is covered functionally in
    // db_test).
    runs.push_back(timedLoop("snapshot_load_mmap", 2000, [&](size_t) {
        auto catalog = db::loadCatalogDir(catalogDir(),
                                          db::LoadMode::Mmap, false);
        benchmark::DoNotOptimize(catalog->numRecords());
    }));
    runs.push_back(
        timedLoop("snapshot_load_stream", 2000, [&](size_t) {
            auto catalog = db::loadCatalogDir(
                catalogDir(), db::LoadMode::Stream, false);
            benchmark::DoNotOptimize(catalog->numRecords());
        }));

    std::string out = "{\n  \"benchmark\": \"bench_db_query\",\n";
    out += "  \"records\": " + std::to_string(database.numRecords()) +
           ",\n  \"runs\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        char buf[200];
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"iterations\": %zu, "
                      "\"wall_ms\": %.1f, \"ops_per_s\": %.0f}%s\n",
                      runs[i].name, runs[i].iterations,
                      runs[i].wall_ms, runs[i].ops_per_s,
                      i + 1 < runs.size() ? "," : "");
        out += buf;
        std::printf("%s", buf);
    }
    out += "  ]\n}\n";

    std::ofstream file(path);
    if (!file) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    file << out;
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

} // namespace
} // namespace uops::bench

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: --json requires a path\n");
                return 1;
            }
            return uops::bench::jsonMode(argv[i + 1]);
        }
    }
    uops::bench::header(
        "Serving-layer query benchmarks (2-uarch sweep slice)");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
