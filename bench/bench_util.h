/**
 * @file
 * Shared helpers for the reproduction benchmarks: cached analysis
 * contexts per microarchitecture and simple table printing.
 *
 * Every bench binary regenerates one table/figure/case study of the
 * paper: it first prints the reproduced artifact (so `./bench_x`
 * output can be diffed against EXPERIMENTS.md), then runs the
 * google-benchmark timings for the involved machinery.
 */

#ifndef UOPS_BENCH_BENCH_UTIL_H
#define UOPS_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/characterize.h"
#include "support/stats.h"
#include "isa/parser.h"

namespace uops::bench {

/** Process-wide instruction database. */
inline const isa::InstrDb &
db()
{
    static const std::unique_ptr<isa::InstrDb> instance =
        isa::buildDefaultDb();
    return *instance;
}

/** Cached per-uarch timing database. */
inline const uarch::TimingDb &
timingDb(uarch::UArch arch)
{
    static std::map<uarch::UArch, std::unique_ptr<uarch::TimingDb>> cache;
    auto it = cache.find(arch);
    if (it == cache.end())
        it = cache
                 .emplace(arch, std::make_unique<uarch::TimingDb>(
                                    db(), arch))
                 .first;
    return *it->second;
}

/** Cached analysis context (instruments + blocking sets). */
struct Context
{
    explicit Context(uarch::UArch arch)
        : harness(timingDb(arch)),
          instruments(core::calibrateInstruments(harness)),
          sse_set(core::BlockingFinder(harness).find(false)),
          avx_set(uarch::uarchInfo(arch).hasExtension(isa::Extension::Avx)
                      ? core::BlockingFinder(harness).find(true)
                      : sse_set)
    {
    }

    sim::MeasurementHarness harness;
    core::ChainInstruments instruments;
    core::BlockingSet sse_set;
    core::BlockingSet avx_set;
};

inline Context &
context(uarch::UArch arch)
{
    static std::map<uarch::UArch, std::unique_ptr<Context>> cache;
    auto it = cache.find(arch);
    if (it == cache.end())
        it = cache.emplace(arch, std::make_unique<Context>(arch)).first;
    return *it->second;
}

/** Characterize one named variant on one uarch (full pipeline). */
inline core::InstrCharacterization
characterizeOne(uarch::UArch arch, const std::string &variant_name)
{
    Context &ctx = context(arch);
    const auto *v = db().byName(variant_name);
    if (v == nullptr)
        throw std::runtime_error("unknown variant " + variant_name);

    core::InstrCharacterization out;
    out.variant = v;
    core::LatencyAnalyzer lat(ctx.harness, ctx.instruments);
    out.latency = lat.analyze(*v);
    core::PortUsageAnalyzer ports(ctx.harness, ctx.sse_set, ctx.avx_set);
    out.ports = ports.analyze(*v, out.latency.maxLatency());
    core::ThroughputAnalyzer tp(ctx.harness);
    out.throughput = tp.analyze(*v);
    if (!v->attrs().uses_divider && !out.ports.usage.entries.empty())
        out.tp_ports =
            roundCycles(core::ThroughputAnalyzer::computeFromPortUsage(
                out.ports.usage, uarch::uarchInfo(arch).num_ports));
    return out;
}

/** Print a rule line. */
inline void
rule(char c = '-', int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar(c);
    std::putchar('\n');
}

/** Print a section header. */
inline void
header(const std::string &title)
{
    rule('=');
    std::printf("%s\n", title.c_str());
    rule('=');
}

} // namespace uops::bench

#endif // UOPS_BENCH_BENCH_UTIL_H
