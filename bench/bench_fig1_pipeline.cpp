/**
 * @file
 * Reproduces **Figure 1** (the pipeline structure of Intel Core CPUs)
 * behaviourally: for every generation, saturation kernels demonstrate
 * the modeled execution engine — the per-port functional units, the
 * 4-wide front end, the load/store-address/store-data port split, and
 * the non-pipelined divider.
 *
 * The google-benchmark timings measure raw simulator speed.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sim/pipeline.h"

namespace uops::bench {
namespace {

double
throughputOf(uarch::UArch arch, const std::string &listing)
{
    sim::MeasurementHarness harness(timingDb(arch));
    auto kernel = isa::assemble(db(), listing);
    return harness.measure(kernel).cycles /
           static_cast<double>(kernel.size());
}

void
printFigure1()
{
    header("Figure 1: pipeline structure (behavioural reproduction)");
    std::printf("%-13s %6s %6s %6s %6s %6s %6s %6s\n", "Architecture",
                "ports", "issue", "ALU/c", "LD/c", "ST/c", "FADD/c",
                "DIVocc");
    rule();
    for (auto arch : uarch::allUArches()) {
        const auto &info = uarch::uarchInfo(arch);

        // ALU throughput: independent ADDs -> number of ALU ports.
        std::string adds;
        const char *regs[] = {"RAX", "RBX", "RCX", "RDX",
                              "RAX", "RBX", "RCX", "RDX"};
        for (int i = 0; i < 8; ++i)
            adds += std::string("ADD ") + regs[i] + ", RSI\n";
        double alu = 1.0 / throughputOf(arch, adds);

        // Load throughput: independent loads -> number of load ports.
        double ld = 1.0 / throughputOf(arch, "MOV RAX, [RSI]\n"
                                             "MOV RBX, [RSI+8]\n"
                                             "MOV RCX, [RSI+16]\n"
                                             "MOV RDX, [RSI+24]\n");
        // Store throughput: one store-data port.
        double st = 1.0 / throughputOf(arch, "MOV [RSI], RAX\n"
                                             "MOV [RSI+8], RBX\n"
                                             "MOV [RSI+16], RCX\n"
                                             "MOV [RSI+24], RDX\n");
        // FP-add throughput.
        double fadd = 1.0 / throughputOf(arch, "ADDPS XMM1, XMM5\n"
                                               "ADDPS XMM2, XMM5\n"
                                               "ADDPS XMM3, XMM5\n"
                                               "ADDPS XMM4, XMM5\n");
        // Divider occupancy: independent divides.
        double div = throughputOf(arch, "DIVPS XMM1, XMM5\n"
                                        "DIVPS XMM2, XMM5\n");
        // Front-end width: NOPs use no port, so the only limit is
        // issue (4/cycle).
        double issue =
            1.0 / throughputOf(arch, "NOP\nNOP\nNOP\nNOP\n"
                                     "NOP\nNOP\nNOP\nNOP\n");

        std::printf("%-13s %6d %6.1f %6.2f %6.2f %6.2f %6.2f %6.1f\n",
                    info.full_name.c_str(), info.num_ports, issue, alu,
                    ld, st, fadd, div);
    }
    rule();
    std::printf(
        "Expected shape: 6 ports through Ivy Bridge, 8 from Haswell;\n"
        "3 ALU ports pre-Haswell vs 4 after; 1 load port on\n"
        "Nehalem/Westmere vs 2 later; 1 store-data port everywhere;\n"
        "2 FP-add ports only on Skylake+; divider not fully pipelined\n"
        "(occupancy >> 1 cycle).\n\n");
}

void
BM_SimulatorThroughput(benchmark::State &state)
{
    // Raw simulator speed on a port-saturating kernel.
    const auto &tdb = timingDb(uarch::UArch::Skylake);
    sim::Pipeline pipeline(tdb);
    isa::Kernel body = isa::assemble(db(), "ADD RAX, RSI\n"
                                           "ADD RBX, RSI\n"
                                           "ADD RCX, RSI\n"
                                           "ADD RDX, RSI\n");
    isa::Kernel kernel;
    for (int i = 0; i < 250; ++i)
        kernel.insert(kernel.end(), body.begin(), body.end());
    for (auto _ : state) {
        auto result = pipeline.run(kernel);
        benchmark::DoNotOptimize(result.cycles);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(kernel.size()));
}

BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMicrosecond);

void
BM_MeasurementHarness(benchmark::State &state)
{
    // One full Algorithm-2 measurement (n=10 + n=110 runs).
    sim::MeasurementHarness harness(timingDb(uarch::UArch::Skylake));
    auto kernel = isa::assemble(db(), "ADD RAX, RBX");
    for (auto _ : state) {
        auto m = harness.measure(kernel);
        benchmark::DoNotOptimize(m.cycles);
    }
}

BENCHMARK(BM_MeasurementHarness)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace uops::bench

int
main(int argc, char **argv)
{
    uops::bench::printFigure1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
