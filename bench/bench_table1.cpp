/**
 * @file
 * Reproduces **Table 1** of the paper: for each generation of the
 * Intel Core architecture, the number of characterized instruction
 * variants, the supporting IACA versions, and the hardware-vs-IACA
 * agreement percentages for µop counts and port usage. Also reports
 * the total tool runtime per microarchitecture (Section 7.1: 50-110
 * minutes on real hardware; seconds on the simulated substrate).
 *
 * The google-benchmark timings measure the end-to-end characterization
 * tool per microarchitecture.
 */

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "iaca/iaca.h"

namespace uops::bench {
namespace {

struct Row
{
    std::string arch, processor, versions;
    size_t instrs = 0;
    double uops_pct = 0.0, ports_pct = 0.0;
    double seconds = 0.0;
    bool has_iaca = false;
};

Row
runArch(uarch::UArch arch)
{
    Row row;
    const auto &info = uarch::uarchInfo(arch);
    row.arch = info.full_name;
    row.processor = info.processor;

    auto versions = iaca::versionsFor(arch);
    if (!versions.empty()) {
        row.versions = iaca::versionName(versions.front()) + "-" +
                       iaca::versionName(versions.back());
        row.has_iaca = true;
    } else {
        row.versions = "-";
    }

    auto t0 = std::chrono::steady_clock::now();
    core::Characterizer tool(db(), arch);
    auto set = tool.run();
    auto t1 = std::chrono::steady_clock::now();
    row.seconds = std::chrono::duration<double>(t1 - t0).count();
    row.instrs = set.instrs.size();

    if (row.has_iaca) {
        auto cmp = core::compareWithIaca(db(), set);
        row.uops_pct = cmp.uopsAgreement();
        row.ports_pct = cmp.portsAgreement();
    }
    return row;
}

void
printTable1()
{
    header("Table 1: tested microarchitectures, instruction variants, "
           "and comparison with IACA");
    std::printf("%-13s %-16s %8s  %-8s %8s %8s %9s\n", "Architecture",
                "Processor", "# Instr.", "IACA", "uops", "Ports",
                "Tool[s]");
    rule();
    for (auto arch : uarch::allUArches()) {
        Row row = runArch(arch);
        if (row.has_iaca) {
            std::printf("%-13s %-16s %8zu  %-8s %7.2f%% %7.2f%% %9.1f\n",
                        row.arch.c_str(), row.processor.c_str(),
                        row.instrs, row.versions.c_str(), row.uops_pct,
                        row.ports_pct, row.seconds);
        } else {
            std::printf("%-13s %-16s %8zu  %-8s %8s %8s %9.1f\n",
                        row.arch.c_str(), row.processor.c_str(),
                        row.instrs, row.versions.c_str(), "-", "-",
                        row.seconds);
        }
    }
    rule();
    std::printf(
        "Paper reference values (real hardware):\n"
        "  Nehalem 1836 / 2.1-2.2 / 91.43%% / 95.27%%;"
        "  Westmere 1848 / 91.36%% / 94.61%%\n"
        "  Sandy Bridge 2538 / 93.25%% / 98.24%%;"
        "  Ivy Bridge 2549 / 91.36%% / 97.39%%\n"
        "  Haswell 3107 / 93.10%% / 96.45%%;"
        "  Broadwell 3118 / 92.83%% / 92.64%%\n"
        "  Skylake 3119 / 92.29%% / 91.04%%;"
        "  Kaby/Coffee Lake 3119 / no IACA support\n"
        "(Variant totals scale with this project's x86 subset; the\n"
        " growth pattern across generations and the agreement bands\n"
        " are the reproduced quantities.)\n\n");
}

void
BM_CharacterizeUArch(benchmark::State &state)
{
    auto arch = static_cast<uarch::UArch>(state.range(0));
    for (auto _ : state) {
        core::Characterizer tool(db(), arch);
        auto set = tool.run();
        benchmark::DoNotOptimize(set.instrs.size());
        state.counters["variants"] =
            static_cast<double>(set.instrs.size());
    }
}

BENCHMARK(BM_CharacterizeUArch)
    ->Arg(static_cast<int>(uarch::UArch::Nehalem))
    ->Arg(static_cast<int>(uarch::UArch::Skylake))
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

} // namespace
} // namespace uops::bench

int
main(int argc, char **argv)
{
    uops::bench::printTable1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
