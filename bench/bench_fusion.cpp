/**
 * @file
 * Extension experiment (the paper's Section 9 future work): macro-
 * fusion characterization. For every generation, probes which
 * flag-writing instructions fuse with a following conditional branch
 * into a single µop, using the adjacent-vs-NOP-separated µop-count
 * measurement of core::FusionAnalyzer.
 *
 * Expected matrix: CMP/TEST fuse on all Core generations; simple ALU
 * (ADD/SUB/AND/INC/DEC) fuses from Sandy Bridge on; shifts, memory
 * compares, multiplies and unconditional jumps never fuse.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/fusion.h"

namespace uops::bench {
namespace {

void
printFusionStudy()
{
    header("Section 9 extension: macro-fusion characterization");
    std::printf("%-18s", "producer + JZ");
    for (auto arch : uarch::allUArches())
        std::printf(" %4s", uarch::uarchShortName(arch).c_str());
    std::printf("\n");
    rule();

    std::vector<std::string> producers = {
        "CMP_R64_R64", "TEST_R64_R64", "ADD_R64_R64", "SUB_R64_R64",
        "AND_R64_R64", "INC_R64",      "DEC_R64",     "SHL_R64_I8",
        "CMP_R64_M64", "IMUL_R64_R64"};

    std::map<std::string, std::map<uarch::UArch, bool>> matrix;
    for (auto arch : uarch::allUArches()) {
        sim::MeasurementHarness harness(timingDb(arch));
        core::FusionAnalyzer analyzer(harness);
        for (const auto &p : analyzer.sweep())
            matrix[p.producer->name()][arch] = p.fused;
    }
    for (const auto &name : producers) {
        std::printf("%-18s", name.c_str());
        for (auto arch : uarch::allUArches()) {
            auto it = matrix.find(name);
            bool fused = it != matrix.end() && it->second.count(arch) &&
                         it->second.at(arch);
            std::printf(" %4s", fused ? "yes" : "-");
        }
        std::printf("\n");
    }
    rule();
    std::printf(
        "Detection: µops/pair adjacent vs NOP-separated (a fused pair\n"
        "dispatches one branch-unit µop). CMP/TEST fuse everywhere;\n"
        "ADD/SUB/AND/INC/DEC only from Sandy Bridge; memory compares\n"
        "and non-compare flag writers never fuse.\n\n");
}

void
BM_FusionSweep(benchmark::State &state)
{
    sim::MeasurementHarness harness(timingDb(uarch::UArch::Skylake));
    core::FusionAnalyzer analyzer(harness);
    for (auto _ : state) {
        auto probes = analyzer.sweep();
        benchmark::DoNotOptimize(probes.size());
    }
}

BENCHMARK(BM_FusionSweep)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace uops::bench

int
main(int argc, char **argv)
{
    uops::bench::printFusionStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
