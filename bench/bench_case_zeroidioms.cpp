/**
 * @file
 * Reproduces **Section 7.3.6** (zero idioms): the same-register
 * microbenchmark discovers all dependency-breaking idioms — including
 * the (V)PCMPGT family, which is *not* in the Optimization Manual's
 * list of dependency-breaking idioms.
 *
 * Detection criterion: with distinct registers the instruction chains
 * (cycles/instr ~ its latency); with identical registers a
 * dependency-breaking idiom runs at its throughput instead. Zero
 * idioms additionally stop using any execution port on uarches with
 * zero-idiom elimination.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace uops::bench {
namespace {

struct IdiomRow
{
    std::string name;
    double distinct_cycles;
    double same_cycles;
    double same_uops; ///< port µops with identical registers
    bool dep_breaking;
    bool port_free;
};

std::optional<IdiomRow>
probe(uarch::UArch arch, const isa::InstrVariant &v)
{
    auto expl = v.explicitOperands();
    if (expl.size() < 2)
        return std::nullopt;
    const auto &a = v.operand(expl[0]);
    const auto &b = v.operand(expl[1]);
    if (a.kind != isa::OpKind::Reg || b.kind != isa::OpKind::Reg ||
        a.reg_class != b.reg_class || !a.readWritten())
        return std::nullopt;

    Context &ctx = context(arch);

    // Distinct registers: chained on the destination.
    core::RegPool pool(core::RegPool::Zone::Analyzed);
    isa::Kernel chain = {core::makeIndependent(v, pool)};
    double distinct = ctx.harness.measure(chain).cycles;

    // Identical registers.
    core::RegPool pool2(core::RegPool::Zone::Analyzed);
    isa::Reg shared = pool2.next(a.reg_class);
    std::vector<isa::OperandValue> values;
    for (int e : expl) {
        isa::OperandValue val;
        const auto &spec = v.operand(static_cast<size_t>(e));
        if (spec.kind == isa::OpKind::Reg)
            val.reg = shared;
        else
            val.imm = 0;
        values.push_back(val);
    }
    isa::Kernel same = {isa::makeInstance(v, values)};
    auto m = ctx.harness.measure(same);

    IdiomRow row;
    row.name = v.name();
    row.distinct_cycles = distinct;
    row.same_cycles = m.cycles;
    row.same_uops = m.totalPortUops();
    row.dep_breaking = m.cycles < distinct - 0.4;
    row.port_free = m.totalPortUops() < 0.1;
    return row;
}

void
printZeroIdiomStudy()
{
    header("Section 7.3.6: dependency-breaking idiom discovery "
           "(Skylake)");
    std::printf("%-18s %9s %9s %7s  %s\n", "variant", "distinct",
                "same-reg", "uops", "classification");
    rule();

    // The manual's documented zero idioms plus the paper's discovery.
    std::vector<std::string> manual_list = {
        "XOR_R32_R32",  "XOR_R64_R64",  "SUB_R32_R32", "SUB_R64_R64",
        "PXOR_X_X",     "XORPS_X_X",    "XORPD_X_X",   "VPXOR_X_X_X",
        "VXORPS_X_X_X",
    };
    std::vector<std::string> discovered = {
        "PCMPGTB_X_X",   "PCMPGTW_X_X",   "PCMPGTD_X_X",
        "PCMPGTQ_X_X",   "VPCMPGTB_X_X_X", "VPCMPGTD_X_X_X",
        "VPCMPGTQ_X_X_X",
    };
    std::vector<std::string> negatives = {"ADD_R64_R64", "AND_R64_R64",
                                          "PADDD_X_X", "OR_R64_R64"};

    auto show = [&](const std::vector<std::string> &names,
                    const char *group) {
        std::printf("-- %s\n", group);
        for (const auto &name : names) {
            const auto *v = db().byName(name);
            if (v == nullptr)
                continue;
            auto row = probe(uarch::UArch::Skylake, *v);
            if (!row)
                continue;
            const char *cls =
                !row->dep_breaking
                    ? "not dependency-breaking"
                    : (row->port_free ? "zero idiom (no port)"
                                      : "dependency-breaking idiom");
            std::printf("%-18s %9.2f %9.2f %7.2f  %s\n",
                        row->name.c_str(), row->distinct_cycles,
                        row->same_cycles, row->same_uops, cls);
        }
    };
    show(manual_list, "Optimization Manual list (3.5.1.8)");
    show(discovered,
         "paper's discovery: (V)PCMPGT - not in the manual's list");
    show(negatives, "negative controls");
    rule();

    // Full sweep: how many dependency-breaking idioms exist in the DB?
    int breaking = 0, zero = 0, swept = 0;
    core::Characterizer tool(db(), uarch::UArch::Skylake);
    for (const auto *v : db().all()) {
        if (!tool.isMeasurable(*v) || v->attrs().uses_divider ||
            v->attrs().mov_elim_candidate)
            continue;
        auto row = probe(uarch::UArch::Skylake, *v);
        if (!row)
            continue;
        ++swept;
        if (row->dep_breaking) {
            ++breaking;
            if (row->port_free)
                ++zero;
        }
    }
    std::printf("sweep: %d two-register read-write variants probed; "
                "%d dependency-breaking, of which %d zero idioms\n\n",
                swept, breaking, zero);

    // Nehalem: idioms break the dependency but still use a port.
    std::printf("On Nehalem zero idioms still execute (no ROB "
                "elimination):\n");
    auto nhm = probe(uarch::UArch::Nehalem, *db().byName("XOR_R64_R64"));
    if (nhm)
        std::printf("  XOR_R64_R64: same-reg %.2f cycles, %.2f port "
                    "µops (dependency broken, port used)\n\n",
                    nhm->same_cycles, nhm->same_uops);
}

void
BM_IdiomProbe(benchmark::State &state)
{
    const auto *v = db().byName("PCMPGTD_X_X");
    for (auto _ : state) {
        auto row = probe(uarch::UArch::Skylake, *v);
        benchmark::DoNotOptimize(row->dep_breaking);
    }
}

BENCHMARK(BM_IdiomProbe)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace uops::bench

int
main(int argc, char **argv)
{
    uops::bench::printZeroIdiomStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
