/**
 * @file
 * HTTP serving load benchmark: the epoll-reactor transport versus the
 * legacy thread-per-connection transport on the same mixed keep-alive
 * workload, end to end over loopback sockets.
 *
 * Workload: N concurrent persistent connections, each issuing batches
 * of 32 pipelined GETs — precomputed-blob hits (/instr/{name}),
 * cached /predict lookups, and mostly If-None-Match revalidations
 * (304, header-only), the shape of a warm polling client — then
 * reading all 32 responses.
 * That is the uops.info-shaped hot path this repo's serving layer is
 * optimized for: every response is a hash lookup away, so the
 * transport is the bottleneck. The reactor parses a whole pipelined
 * batch off one readiness event and flushes the queued responses with
 * iovec-coalesced sendmsg calls; the threaded transport binds each
 * connection to a pool worker and pays a serialize + send per
 * response, so at connection counts beyond the worker count its
 * clients serialize behind each other (QPS flattens, p99 explodes).
 *
 * Reported per configuration: aggregate QPS (ops_per_s) and the p99
 * per-batch round-trip latency.
 *
 * Machine-readable mode for perf tracking (BENCH_http.json):
 *
 *     bench_http_load --json <path>
 *
 * writes one record {name, iterations, wall_ms, ops_per_s, p99_us}
 * per configuration, skipping the google-benchmark harness.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench_util.h"
#include "core/batch.h"
#include "db/catalog.h"
#include "server/http_server.h"

namespace uops::bench {
namespace {

/** Small two-uarch slice: the serving content. Kept deliberately
 *  modest — the benchmark measures the transport, not the render. */
std::shared_ptr<const db::DatabaseCatalog>
sliceCatalog()
{
    static const auto catalog = [] {
        core::BatchOptions options;
        options.characterizer.filter = [](const isa::InstrVariant &v) {
            return v.mnemonic() == "ADD" || v.mnemonic() == "IMUL";
        };
        return db::runCatalogSweep(
            db(), {uarch::UArch::Nehalem, uarch::UArch::Skylake},
            options, nullptr);
    }();
    return catalog;
}

/** A variant name present in the slice (blob-backed /instr target). */
const std::string &
instrName()
{
    static const std::string name = [] {
        db::Query query;
        query.mnemonic = "ADD";
        query.arch = uarch::UArch::Skylake;
        query.limit = 1;
        auto picked = sliceCatalog()->search(query);
        if (picked.empty())
            return std::string("ADD_R64_R64");
        return std::string(picked[0].name());
    }();
    return name;
}

int
connectTo(uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) < 0) {
        ::close(fd);
        return -1;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return fd;
}

bool
sendAll(int fd, const std::string &bytes)
{
    size_t sent = 0;
    while (sent < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + sent,
                           bytes.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<size_t>(n);
    }
    return true;
}

/** Consume one response (Content-Length framed; 304s are head-only)
 *  off the buffered stream. False on connection loss. @p received,
 *  when set, accumulates every byte read off the socket. */
bool
readOneResponse(int fd, std::string &carry, size_t *received = nullptr)
{
    char chunk[8192];
    size_t head_end;
    while (true) {
        size_t pos = carry.find("\r\n\r\n");
        if (pos != std::string::npos) {
            head_end = pos + 4;
            break;
        }
        ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0)
            return false;
        if (received != nullptr)
            *received += static_cast<size_t>(n);
        carry.append(chunk, static_cast<size_t>(n));
    }
    size_t body_bytes = 0;
    size_t cl = carry.find("Content-Length: ");
    if (cl != std::string::npos && cl < head_end)
        body_bytes = static_cast<size_t>(
            std::strtoul(carry.c_str() + cl + 16, nullptr, 10));
    while (carry.size() < head_end + body_bytes) {
        ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0)
            return false;
        if (received != nullptr)
            *received += static_cast<size_t>(n);
        carry.append(chunk, static_cast<size_t>(n));
    }
    carry.erase(0, head_end + body_bytes);
    return true;
}

constexpr size_t kBatchDepth = 32;

/** One batch of 32 pipelined requests: blob hits (/instr full
 *  bodies), cached /predict lookups, and a majority of If-None-Match
 *  revalidations (header-only 304s, across /uarchs and /instr
 *  targets) — the mix a polling client settles into once it caches
 *  bodies and revalidates on each poll. Every request carries a
 *  fixed-length X-Request-Id: servers echo it, which pins response
 *  sizes so the timed clients can frame replies by byte count
 *  (established during the full-parse warmup). @p etag is the
 *  serving generation's tag. */
std::string
makeBatch(const std::string &etag)
{
    const std::string &name = instrName();
    auto get = [](const std::string &target,
                  const std::string &extra = "") {
        return "GET " + target + " HTTP/1.1\r\nHost: x\r\n"
               "X-Request-Id: bench-load-01\r\n" +
               extra + "\r\n";
    };
    const std::string revalidate =
        "If-None-Match: \"" + etag + "\"\r\n";
    std::string batch;
    for (int repeat = 0; repeat < 4; ++repeat) {
        batch += get("/instr/" + name);
        batch += get("/uarchs", revalidate);
        batch += get("/instr/" + name + "?uarch=SKL", revalidate);
        batch += get("/uarchs", revalidate);
        batch += get("/instr/" + name + "?uarch=NHM", revalidate);
        batch += get("/uarchs", revalidate);
        batch += get("/instr/" + name, revalidate);
        batch += get("/predict?uarch=SKL&asm=ADD%20RAX,%20RBX");
    }
    return batch;
}

struct LoadResult
{
    size_t requests = 0;
    double wall_ms = 0;
    double ops_per_s = 0;
    double p99_us = 0;
};

/** Warmup: send one batch and full-parse its responses, returning
 *  the total reply bytes (0 on a framing error or trailing bytes).
 *  This validates the stream the timed loop then frames by count. */
size_t
warmBatch(int fd, const std::string &batch)
{
    if (!sendAll(fd, batch))
        return 0;
    std::string carry;
    size_t received = 0;
    for (size_t r = 0; r < kBatchDepth; ++r)
        if (!readOneResponse(fd, carry, &received))
            return 0;
    return carry.empty() ? received : 0;
}

/** Run @p connections concurrent keep-alive clients, each sending
 *  @p batches pipelined batches, against a server on @p port.
 *  @p batch_bytes is the known steady-state reply size per batch
 *  (from warmup): the timed clients frame replies by byte count —
 *  every byte is still received and acknowledged, none re-scanned. */
LoadResult
runLoad(uint16_t port, const std::string &etag, size_t connections,
        size_t batches, size_t batch_bytes)
{
    const std::string batch = makeBatch(etag);
    std::vector<std::vector<double>> latencies(connections);
    std::vector<std::thread> clients;
    std::atomic<size_t> completed{0};

    auto t0 = std::chrono::steady_clock::now();
    for (size_t c = 0; c < connections; ++c) {
        clients.emplace_back([&, c] {
            int fd = connectTo(port);
            if (fd < 0)
                return;
            char sink[16384];
            latencies[c].reserve(batches);
            for (size_t b = 0; b < batches; ++b) {
                auto b0 = std::chrono::steady_clock::now();
                if (!sendAll(fd, batch))
                    break;
                size_t need = batch_bytes;
                while (need > 0) {
                    ssize_t n = ::recv(fd, sink,
                                       std::min(need, sizeof sink), 0);
                    if (n <= 0)
                        break;
                    need -= static_cast<size_t>(n);
                }
                if (need > 0)
                    break;
                auto b1 = std::chrono::steady_clock::now();
                latencies[c].push_back(
                    std::chrono::duration<double, std::micro>(b1 - b0)
                        .count());
                completed.fetch_add(kBatchDepth,
                                    std::memory_order_relaxed);
            }
            ::close(fd);
        });
    }
    for (std::thread &client : clients)
        client.join();
    auto t1 = std::chrono::steady_clock::now();

    LoadResult result;
    result.requests = completed.load();
    result.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    result.ops_per_s =
        result.wall_ms > 0
            ? 1000.0 * static_cast<double>(result.requests) /
                  result.wall_ms
            : 0.0;
    std::vector<double> all;
    for (auto &per_conn : latencies)
        all.insert(all.end(), per_conn.begin(), per_conn.end());
    if (!all.empty()) {
        std::sort(all.begin(), all.end());
        result.p99_us = all[std::min(
            all.size() - 1, static_cast<size_t>(0.99 * all.size()))];
    }
    return result;
}

/** Bring up a server (reactor or legacy transport), warm its caches,
 *  run the load, tear down. */
LoadResult
measure(bool reactor, size_t connections, size_t batches)
{
    server::QueryService service(sliceCatalog(), db());
    // Per-request access logging costs the same in both transports
    // and would only dilute the ratio; a load benchmark measures the
    // serving path, not the log sink.
    service.logger().setMinLevel(obs::LogLevel::Warn);
    server::HttpServer::Options options;
    options.reactor = reactor;
    // High enough that no connection hits the per-connection budget
    // mid-run: the benchmark measures steady-state keep-alive
    // serving, not reconnect cost.
    options.max_requests_per_connection =
        (batches + 4) * kBatchDepth;
    server::HttpServer http(service, options);
    http.start();

    server::HttpRequest probe;
    probe.method = "GET";
    probe.target = "/uarchs";
    probe.path = "/uarchs";
    std::string etag = service.handle(probe).etag;

    // Warm every target (caches fill, X-Cache flips to hit) and
    // learn the steady-state reply size per batch: once warm, the
    // fixed request IDs make response sizes deterministic, so two
    // consecutive fully-parsed batches must agree byte for byte.
    const std::string batch = makeBatch(etag);
    size_t batch_bytes = 0;
    int fd = connectTo(http.port());
    if (fd >= 0) {
        warmBatch(fd, batch);
        size_t second = warmBatch(fd, batch);
        size_t third = warmBatch(fd, batch);
        if (second != 0 && second == third)
            batch_bytes = second;
        ::close(fd);
    }
    if (batch_bytes == 0) {
        std::fprintf(stderr,
                     "warmup failed: unstable or broken stream\n");
        http.stop();
        return LoadResult{};
    }

    LoadResult result =
        runLoad(http.port(), etag, connections, batches, batch_bytes);
    http.stop();
    return result;
}

// ---------------------------------------------------------------------
// google-benchmark harness
// ---------------------------------------------------------------------

void
BM_HttpLoad(benchmark::State &state, bool reactor)
{
    size_t connections = static_cast<size_t>(state.range(0));
    for (auto _ : state) {
        LoadResult result = measure(reactor, connections, 32);
        state.SetItemsProcessed(
            state.items_processed() +
            static_cast<int64_t>(result.requests));
        state.counters["qps"] = result.ops_per_s;
        state.counters["p99_us"] = result.p99_us;
    }
}

void
BM_HttpReactor(benchmark::State &state)
{
    BM_HttpLoad(state, true);
}
BENCHMARK(BM_HttpReactor)->Arg(1)->Arg(16)->Unit(
    benchmark::kMillisecond);

void
BM_HttpLegacyThreaded(benchmark::State &state)
{
    BM_HttpLoad(state, false);
}
BENCHMARK(BM_HttpLegacyThreaded)
    ->Arg(1)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// --json mode
// ---------------------------------------------------------------------

int
jsonMode(const std::string &path)
{
    struct Config
    {
        const char *name;
        bool reactor;
        size_t connections;
        size_t batches;
    };
    // 16 keep-alive connections is the headline configuration the
    // acceptance criterion (reactor >= 5x legacy) is stated for; the
    // single-connection pairs pin the per-request fast-path cost
    // where concurrency plays no role.
    const std::vector<Config> configs = {
        {"http_reactor_c1", true, 1, 256},
        {"http_legacy_c1", false, 1, 256},
        {"http_reactor_c16", true, 16, 64},
        {"http_legacy_c16", false, 16, 64},
    };

    std::string out = "{\n  \"benchmark\": \"bench_http_load\",\n";
    out += "  \"batch_depth\": " + std::to_string(kBatchDepth) +
           ",\n  \"runs\": [\n";
    double reactor_c16 = 0, legacy_c16 = 0;
    for (size_t i = 0; i < configs.size(); ++i) {
        const Config &config = configs[i];
        // Median of three repetitions per configuration: dozens of
        // client threads time-slicing against the server make single
        // runs noisy, and the median discards a one-off scheduler
        // stall without cherry-picking the best case.
        std::vector<LoadResult> reps;
        for (int rep = 0; rep < 3; ++rep)
            reps.push_back(measure(config.reactor, config.connections,
                                   config.batches));
        std::sort(reps.begin(), reps.end(),
                  [](const LoadResult &a, const LoadResult &b) {
                      return a.ops_per_s < b.ops_per_s;
                  });
        LoadResult r = reps[reps.size() / 2];
        if (std::string(config.name) == "http_reactor_c16")
            reactor_c16 = r.ops_per_s;
        if (std::string(config.name) == "http_legacy_c16")
            legacy_c16 = r.ops_per_s;
        char buf[240];
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"iterations\": %zu, "
                      "\"wall_ms\": %.1f, \"ops_per_s\": %.0f, "
                      "\"p99_us\": %.0f}%s\n",
                      config.name, r.requests, r.wall_ms, r.ops_per_s,
                      r.p99_us, i + 1 < configs.size() ? "," : "");
        out += buf;
        std::printf("%s", buf);
    }
    out += "  ],\n";
    char ratio[80];
    std::snprintf(ratio, sizeof ratio,
                  "  \"reactor_vs_legacy_c16\": %.2f\n}\n",
                  legacy_c16 > 0 ? reactor_c16 / legacy_c16 : 0.0);
    out += ratio;
    std::printf("%s", ratio);

    std::ofstream file(path);
    if (!file) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    file << out;
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

} // namespace
} // namespace uops::bench

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: --json requires a path\n");
                return 1;
            }
            return uops::bench::jsonMode(argv[i + 1]);
        }
    }
    uops::bench::header(
        "HTTP transport load: epoll reactor vs thread-per-connection");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
