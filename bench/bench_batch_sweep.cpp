/**
 * @file
 * Scaling study of the batch characterization engine: sweep a slice of
 * the instruction set over two microarchitectures with 1..N worker
 * threads and report the parallel speedup, then run google-benchmark
 * timings for the single- and multi-threaded sweeps.
 *
 * Full-ISA characterization is embarrassingly parallel per
 * (variant, uarch) task; the work-stealing pool should scale nearly
 * linearly until the per-worker Characterizer setup (blocking-set
 * discovery) dominates.
 *
 * Machine-readable mode for perf tracking (BENCH_sweep.json / CI):
 *
 *     bench_batch_sweep --json <path> [--mod N] [--threads 1,2,4]
 *
 * runs the sweep once per thread count and writes one record
 * {threads, tasks, wall_ms, tasks_per_s} per run, skipping the
 * google-benchmark harness. --mod widens/narrows the variant slice
 * (filter: id % N == 0; default 4, the scaling-study slice).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "bench_util.h"
#include "core/batch.h"
#include "support/strings.h"

namespace uops::bench {
namespace {

const std::vector<uarch::UArch> kArches = {uarch::UArch::Nehalem,
                                           uarch::UArch::Skylake};

core::BatchOptions
sweepOptions(size_t threads, int mod = 4)
{
    core::BatchOptions options;
    options.num_threads = threads;
    // A representative slice: keeps the study to a few seconds while
    // covering GPR, vector, divider and memory variants.
    options.characterizer.filter = [mod](const isa::InstrVariant &v) {
        return v.id() % mod == 0;
    };
    return options;
}

struct SweepRun
{
    size_t threads = 0;
    size_t tasks = 0;
    double wall_ms = 0.0;
    double tasks_per_s = 0.0;
};

SweepRun
timedSweep(size_t threads, int mod)
{
    auto t0 = std::chrono::steady_clock::now();
    auto report =
        core::runBatchSweep(db(), kArches, sweepOptions(threads, mod));
    auto t1 = std::chrono::steady_clock::now();
    SweepRun run;
    run.threads = threads;
    run.tasks = report.numTasks();
    run.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0)
                      .count();
    run.tasks_per_s = run.wall_ms > 0.0
                          ? 1000.0 * static_cast<double>(run.tasks) /
                                run.wall_ms
                          : 0.0;
    return run;
}

void
printScalingStudy()
{
    header("Batch sweep scaling: 2 uarches, 1..8 worker threads");

    size_t hw = std::thread::hardware_concurrency();
    std::printf("hardware threads: %zu\n\n", hw);
    std::printf("  %-8s %10s %9s %10s\n", "threads", "tasks", "time",
                "speedup");

    double base = 0.0;
    for (size_t threads : {1, 2, 4, 8}) {
        SweepRun run = timedSweep(threads, 4);
        double secs = run.wall_ms / 1000.0;
        if (threads == 1)
            base = secs;
        std::printf("  %-8zu %10zu %8.2fs %9.2fx\n", threads,
                    run.tasks, secs, base / secs);
    }
    std::printf("\n");
}

/** {threads, tasks, wall_ms, tasks_per_s} records, one per run. */
int
jsonMode(const std::string &path, int mod,
         const std::vector<size_t> &thread_counts)
{
    std::string out = "{\n  \"benchmark\": \"bench_batch_sweep\",\n";
    out += "  \"arches\": [\"NHM\", \"SKL\"],\n";
    out += "  \"filter\": \"id % " + std::to_string(mod) +
           " == 0\",\n  \"runs\": [\n";
    for (size_t i = 0; i < thread_counts.size(); ++i) {
        SweepRun run = timedSweep(thread_counts[i], mod);
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "    {\"threads\": %zu, \"tasks\": %zu, "
                      "\"wall_ms\": %.1f, \"tasks_per_s\": %.1f}%s\n",
                      run.threads, run.tasks, run.wall_ms,
                      run.tasks_per_s,
                      i + 1 < thread_counts.size() ? "," : "");
        out += buf;
        std::printf("%s", buf);
    }
    out += "  ]\n}\n";

    std::ofstream file(path);
    if (!file) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    file << out;
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

void
BM_BatchSweep(benchmark::State &state)
{
    size_t threads = static_cast<size_t>(state.range(0));
    for (auto _ : state) {
        auto report =
            core::runBatchSweep(db(), kArches, sweepOptions(threads));
        benchmark::DoNotOptimize(report.numSucceeded());
    }
}

BENCHMARK(BM_BatchSweep)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

} // namespace
} // namespace uops::bench

int
main(int argc, char **argv)
{
    auto parse_count = [](const std::string &text, const char *what) {
        auto value = uops::parseInt(text);
        if (!value || *value < 1) {
            std::fprintf(stderr,
                         "error: %s expects an integer >= 1, got '%s'\n",
                         what, text.c_str());
            std::exit(1);
        }
        return *value;
    };
    std::string json_path;
    int mod = 4;
    std::vector<size_t> thread_counts = {1, 4};
    auto take_value = [&](int &i, const char *what) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "error: %s requires a value\n", what);
            std::exit(1);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json_path = take_value(i, "--json");
        } else if (std::strcmp(argv[i], "--mod") == 0) {
            mod = static_cast<int>(
                parse_count(take_value(i, "--mod"), "--mod"));
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            thread_counts.clear();
            for (const std::string &t :
                 uops::split(take_value(i, "--threads"), ','))
                thread_counts.push_back(
                    static_cast<size_t>(parse_count(t, "--threads")));
        }
    }
    if (!json_path.empty())
        return uops::bench::jsonMode(json_path, mod, thread_counts);

    uops::bench::printScalingStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
