/**
 * @file
 * Scaling study of the batch characterization engine: sweep a slice of
 * the instruction set over two microarchitectures with 1..N worker
 * threads and report the parallel speedup, then run google-benchmark
 * timings for the single- and multi-threaded sweeps.
 *
 * Full-ISA characterization is embarrassingly parallel per
 * (variant, uarch) task; the work-stealing pool should scale nearly
 * linearly until the per-worker Characterizer setup (blocking-set
 * discovery) dominates.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "bench_util.h"
#include "core/batch.h"

namespace uops::bench {
namespace {

const std::vector<uarch::UArch> kArches = {uarch::UArch::Nehalem,
                                           uarch::UArch::Skylake};

core::BatchOptions
sweepOptions(size_t threads)
{
    core::BatchOptions options;
    options.num_threads = threads;
    // A representative slice: keeps the study to a few seconds while
    // covering GPR, vector, divider and memory variants.
    options.characterizer.filter = [](const isa::InstrVariant &v) {
        return v.id() % 4 == 0;
    };
    return options;
}

void
printScalingStudy()
{
    header("Batch sweep scaling: 2 uarches, 1..8 worker threads");

    size_t hw = std::thread::hardware_concurrency();
    std::printf("hardware threads: %zu\n\n", hw);
    std::printf("  %-8s %10s %9s %10s\n", "threads", "tasks", "time",
                "speedup");

    double base = 0.0;
    for (size_t threads : {1, 2, 4, 8}) {
        auto t0 = std::chrono::steady_clock::now();
        auto report = core::runBatchSweep(db(), kArches,
                                          sweepOptions(threads));
        auto t1 = std::chrono::steady_clock::now();
        double secs = std::chrono::duration<double>(t1 - t0).count();
        if (threads == 1)
            base = secs;
        std::printf("  %-8zu %10zu %8.2fs %9.2fx\n", threads,
                    report.numTasks(), secs, base / secs);
    }
    std::printf("\n");
}

void
BM_BatchSweep(benchmark::State &state)
{
    size_t threads = static_cast<size_t>(state.range(0));
    for (auto _ : state) {
        auto report =
            core::runBatchSweep(db(), kArches, sweepOptions(threads));
        benchmark::DoNotOptimize(report.numSucceeded());
    }
}

BENCHMARK(BM_BatchSweep)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

} // namespace
} // namespace uops::bench

int
main(int argc, char **argv)
{
    uops::bench::printScalingStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
