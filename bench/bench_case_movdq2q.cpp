/**
 * @file
 * Reproduces **Section 7.3.4** (MOVDQ2Q): prior work reports an
 * inaccurate port usage on Haswell and an imprecise one on Sandy
 * Bridge for the same instruction.
 *
 * Ground truth on both: 1*p5 + 1*p015.
 *  - Haswell: IACA 2.1 agrees; IACA 2.2/2.3/3.0 and LLVM claim
 *    1*p01+1*p015; Fog claims 1*p01+1*p5.
 *  - Sandy Bridge: measurements agree with IACA and LLVM
 *    (1*p015+1*p5); Fog imprecisely reports 2*p015.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace uops::bench {
namespace {

void
printMovdq2qStudy()
{
    header("Section 7.3.4: MOVDQ2Q MM, XMM");
    std::printf("%-13s %18s %18s\n", "Architecture", "Algorithm 1",
                "naive (Fog-style)");
    rule();
    for (auto arch : {uarch::UArch::SandyBridge, uarch::UArch::Haswell,
                      uarch::UArch::Skylake}) {
        Context &ctx = context(arch);
        core::PortUsageAnalyzer analyzer(ctx.harness, ctx.sse_set,
                                         ctx.avx_set);
        const auto *v = db().byName("MOVDQ2Q_MM_X");
        auto full = analyzer.analyze(*v, 2);
        auto naive = analyzer.analyzeNaive(*v);
        std::printf("%-13s %18s %18s\n",
                    uarch::uarchInfo(arch).full_name.c_str(),
                    full.usage.toString().c_str(),
                    naive.toString().c_str());
    }
    rule();
    std::printf(
        "Published values the paper reconciles:\n"
        "  Haswell:      ours/IACA 2.1: 1*p5+1*p015;"
        " IACA 2.2+/LLVM: 1*p01+1*p015; Fog: 1*p01+1*p5\n"
        "  Sandy Bridge: ours/IACA/LLVM: 1*p015+1*p5; Fog: 2*p015\n"
        "The naive isolation average cannot distinguish these; the\n"
        "blocking-instruction algorithm can.\n\n");
}

void
BM_Movdq2qBothUArches(benchmark::State &state)
{
    Context &snb = context(uarch::UArch::SandyBridge);
    Context &hsw = context(uarch::UArch::Haswell);
    const auto *v = db().byName("MOVDQ2Q_MM_X");
    for (auto _ : state) {
        core::PortUsageAnalyzer a1(snb.harness, snb.sse_set,
                                   snb.avx_set);
        core::PortUsageAnalyzer a2(hsw.harness, hsw.sse_set,
                                   hsw.avx_set);
        benchmark::DoNotOptimize(a1.analyze(*v, 2).usage.totalUops());
        benchmark::DoNotOptimize(a2.analyze(*v, 2).usage.totalUops());
    }
}

BENCHMARK(BM_Movdq2qBothUArches)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace uops::bench

int
main(int argc, char **argv)
{
    uops::bench::printMovdq2qStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
